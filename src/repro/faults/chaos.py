"""Chaos-soak harness: seeded randomized fault scenarios, soaked and shrunk.

Where :class:`~repro.faults.schedule.FaultSchedule` is hand-written, a
:class:`ChaosSchedule` is *generated*: a seed deterministically expands
into a composition of fault **episodes** — flapping rails, correlated
dual-rail outages, mid-rendezvous kills, degrade storms, loss bursts and
node-level crash/restart (a fault class above the per-NIC faults of
``docs/faults.md``: every rail out of one node dies and recovers
together).  The same seed always yields the same episodes, the same
:class:`FaultSchedule`, the same workload, and — because the whole stack
is a deterministic discrete-event simulation — the same run, byte for
byte.  ``ChaosSchedule(seed).to_json()`` round-trips losslessly, so a
failing scenario travels as a small JSON blob.

:func:`run_scenario` executes one seeded scenario on the paper testbed
with the :class:`~repro.core.invariants.InvariantMonitor` armed and a
seeded message workload racing the faults; :func:`soak` sweeps many
seeds and reports outcomes plus scenarios/sec; :func:`shrink` reduces a
failing seed's schedule to a minimal set of episodes that still
reproduces the violation (greedy ddmin over episodes).

Fabric chaos: a schedule built with a ``fabric`` spec additionally
draws :data:`FABRIC_EPISODE_KINDS` — spine outage storms, switch-port
flapping, pod partitions (``docs/fabric-faults.md``) — and
``run_scenario(shape="fat_tree", ranks=8)`` runs it on a switched
fat-tree cluster with a re-planning alltoallv as the workload.

See ``docs/chaos.md`` for the workflow.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.invariants import InvariantViolation
from repro.faults.schedule import FaultSchedule
from repro.util.errors import ConfigurationError

#: episode kinds a chaos seed may draw (generation order = this order)
EPISODE_KINDS = (
    "flap",
    "dual_outage",
    "mid_rdv_kill",
    "degrade_storm",
    "loss_burst",
    "node_crash",
)

#: the pool with silent degradation added.  Kept SEPARATE from
#: EPISODE_KINDS: extending that tuple would re-map every existing
#: seed's ``rng.choice`` draws and silently change all pinned scenarios.
SILENT_EPISODE_KINDS = EPISODE_KINDS + ("silent_degrade",)

#: fabric-level episode kinds, only drawn when a schedule is built with
#: a ``fabric`` spec ({"switches": [...], "spines": int}).  Appended to
#: the pool rather than merged into EPISODE_KINDS for the same pinned-
#: seed reason as SILENT_EPISODE_KINDS.
FABRIC_EPISODE_KINDS = ("spine_outage", "link_flap", "pod_partition")

#: fabric scenario shapes run_scenario understands
CHAOS_SHAPES = ("paper", "flat", "fat_tree")

#: fat-tree geometry for fabric chaos scenarios (8 ranks = 2 pods)
FABRIC_POD_SIZE = 4
FABRIC_SPINES = 2

#: default simulated horizon faults are generated within (µs)
DEFAULT_HORIZON = 4000.0

#: default number of fault episodes per scenario
DEFAULT_INTENSITY = 3

#: watchdog configuration for chaos runs — aggressive enough that every
#: scenario terminates (completes or degrades) well within a drain
CHAOS_TIMEOUT = "200us"
CHAOS_MAX_RETRIES = 8

#: workload message-size palette: eager-range and rendezvous-range mixes
_WORKLOAD_SIZES = (
    1024,
    4 * 1024,
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
)


def _round(value: float) -> float:
    """Clamp generated times to 0.1 µs so schedules read cleanly.

    Floats round-trip exactly through JSON either way; this only keeps
    the episode parameters human-scannable in violation reports.
    """
    return round(value, 1)


class ChaosSchedule:
    """A seed, deterministically expanded into fault episodes.

    Construction draws every parameter from ``random.Random(
    f"chaos:{seed}")`` — no global randomness, no wall clock — so the same
    ``(seed, nics, nodes, horizon, intensity)`` always yields the same
    episodes.  ``episodes`` is plain JSON-able data; :meth:`schedule`
    expands it (in order) into a :class:`FaultSchedule`.

    Shrinking (:func:`shrink`) works on the episode list: any subset of
    episodes is itself a valid ChaosSchedule via :meth:`from_json`.
    """

    def __init__(
        self,
        seed: int,
        nics: Sequence[str] = ("myri10g0", "quadrics1"),
        nodes: Sequence[str] = ("node0", "node1"),
        horizon: float = DEFAULT_HORIZON,
        intensity: int = DEFAULT_INTENSITY,
        episodes: Optional[List[Dict[str, Any]]] = None,
        silent: bool = False,
        fabric: Optional[Dict[str, Any]] = None,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError(f"chaos horizon must be positive: {horizon}")
        if intensity < 1:
            raise ConfigurationError(f"chaos intensity must be >= 1: {intensity}")
        if not nics or not nodes:
            raise ConfigurationError("chaos needs at least one NIC and one node")
        self.seed = int(seed)
        self.nics = tuple(nics)
        self.nodes = tuple(nodes)
        self.horizon = float(horizon)
        self.intensity = int(intensity)
        #: opt-in: draw from the pool that includes silent_degrade
        #: episodes (unannounced bandwidth drops, calibration PR)
        self.silent = bool(silent)
        #: opt-in fabric targets ({"switches": [...], "spines": int});
        #: set => the pool gains FABRIC_EPISODE_KINDS
        if fabric is not None:
            switches = fabric.get("switches")
            if not switches:
                raise ConfigurationError(
                    "chaos fabric spec needs at least one switch name"
                )
            self.fabric: Optional[Dict[str, Any]] = {
                "switches": [str(s) for s in switches],
                "spines": int(fabric.get("spines", 0)),
            }
        else:
            self.fabric = None
        self.episodes: List[Dict[str, Any]] = (
            list(episodes) if episodes is not None else self._generate()
        )

    def __repr__(self) -> str:
        kinds = [e["kind"] for e in self.episodes]
        return f"<ChaosSchedule seed={self.seed} episodes={kinds}>"

    def __len__(self) -> int:
        return len(self.episodes)

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #

    def _generate(self) -> List[Dict[str, Any]]:
        rng = random.Random(f"chaos:{self.seed}")
        count = self.intensity + rng.randrange(self.intensity + 1)
        pool = SILENT_EPISODE_KINDS if self.silent else EPISODE_KINDS
        if self.fabric is not None:
            extra = (
                FABRIC_EPISODE_KINDS
                if self.fabric["spines"] > 0
                else tuple(
                    k for k in FABRIC_EPISODE_KINDS if k != "spine_outage"
                )
            )
            pool = pool + extra
        episodes: List[Dict[str, Any]] = []
        for _ in range(count):
            kind = rng.choice(pool)
            episodes.append(self._draw(kind, rng))
        return episodes

    def _draw(self, kind: str, rng: random.Random) -> Dict[str, Any]:
        h = self.horizon
        start = _round(rng.uniform(0.0, 0.7 * h))
        if kind == "flap":
            return {
                "kind": kind,
                "nic": rng.choice(self.nics),
                "start": start,
                "period": _round(rng.uniform(0.05 * h, 0.2 * h)),
                "duty": round(rng.uniform(0.2, 0.7), 2),
                "cycles": rng.randrange(2, 6),
            }
        if kind == "dual_outage":
            # Correlated failure: every rail down in the same instant.
            return {
                "kind": kind,
                "start": start,
                "duration": _round(rng.uniform(0.05 * h, 0.25 * h)),
            }
        if kind == "mid_rdv_kill":
            # A short, sharp kill timed into the window where rendezvous
            # handshakes and data phases of the workload are in flight.
            return {
                "kind": kind,
                "nic": rng.choice(self.nics),
                "start": _round(rng.uniform(0.05 * h, 0.5 * h)),
                "duration": _round(rng.uniform(0.01 * h, 0.08 * h)),
            }
        if kind == "degrade_storm":
            return {
                "kind": kind,
                "nic": rng.choice(self.nics),
                "start": start,
                "bursts": rng.randrange(2, 5),
                "period": _round(rng.uniform(0.05 * h, 0.15 * h)),
                "bw_factor": round(rng.uniform(0.2, 0.8), 2),
                "extra_latency": _round(rng.uniform(0.0, 5.0)),
            }
        if kind == "loss_burst":
            return {
                "kind": kind,
                "nic": rng.choice(self.nics),
                "start": start,
                "duration": _round(rng.uniform(0.1 * h, 0.4 * h)),
                "probability": round(rng.uniform(0.1, 0.9), 2),
                "control": rng.random() < 0.4,  # stall handshakes instead
            }
        if kind == "node_crash":
            return {
                "kind": kind,
                "node": rng.choice(self.nodes),
                "start": start,
                "duration": _round(rng.uniform(0.05 * h, 0.3 * h)),
            }
        if kind == "silent_degrade":
            # Unannounced bandwidth drop: no fault event reaches the
            # planner — only the calibration drift loop can notice.
            return {
                "kind": kind,
                "nic": rng.choice(self.nics),
                "start": start,
                "bw_factor": round(rng.uniform(0.3, 0.7), 2),
                "duration": _round(rng.uniform(0.2 * h, 0.5 * h)),
            }
        # Fabric kinds carry their targets inline so any episode subset
        # (shrinking) round-trips through from_json self-contained.
        if kind == "spine_outage":
            # Storm: successive spines of one switch go down in turn.
            fabric = self.fabric or {}
            spines = max(1, int(fabric.get("spines", 1)))
            return {
                "kind": kind,
                "switch": rng.choice(list(fabric["switches"])),
                "spines": spines,
                "first": rng.randrange(spines),
                "outages": rng.randrange(1, 4),
                "start": start,
                "duration": _round(rng.uniform(0.05 * h, 0.25 * h)),
            }
        if kind == "link_flap":
            return {
                "kind": kind,
                "switch": rng.choice(list((self.fabric or {})["switches"])),
                "node": rng.choice(self.nodes),
                "start": start,
                "period": _round(rng.uniform(0.05 * h, 0.2 * h)),
                "duty": round(rng.uniform(0.2, 0.7), 2),
                "cycles": rng.randrange(2, 6),
            }
        if kind == "pod_partition":
            # A contiguous slice of edge ports dies (and recovers)
            # together — one pod cut off from the rest of the fabric.
            width = max(1, len(self.nodes) // 4)
            first = rng.randrange(len(self.nodes))
            nodes = [
                self.nodes[(first + i) % len(self.nodes)]
                for i in range(width)
            ]
            return {
                "kind": kind,
                "switch": rng.choice(list((self.fabric or {})["switches"])),
                "nodes": nodes,
                "start": start,
                "duration": _round(rng.uniform(0.05 * h, 0.2 * h)),
            }
        raise ConfigurationError(f"unknown chaos episode kind {kind!r}")

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #

    def schedule(self) -> FaultSchedule:
        """Expand the episodes, in order, into a :class:`FaultSchedule`."""
        sched = FaultSchedule(seed=self.seed)
        for i, ep in enumerate(self.episodes):
            kind = ep["kind"]
            if kind == "flap":
                sched.flapping(
                    ep["nic"],
                    period=ep["period"],
                    duty=ep["duty"],
                    start=ep["start"],
                    cycles=ep["cycles"],
                )
            elif kind == "dual_outage":
                for nic in self.nics:
                    sched.nic_down(nic, at=ep["start"], duration=ep["duration"])
            elif kind == "mid_rdv_kill":
                sched.nic_down(ep["nic"], at=ep["start"], duration=ep["duration"])
            elif kind == "degrade_storm":
                t = ep["start"]
                for _ in range(ep["bursts"]):
                    sched.degrade(
                        ep["nic"],
                        at=t,
                        bw_factor=ep["bw_factor"],
                        extra_latency=ep["extra_latency"],
                        duration=ep["period"] / 2.0,
                    )
                    t = _round(t + ep["period"])
            elif kind == "loss_burst":
                loss = sched.rdv_stall if ep["control"] else sched.eager_loss
                loss(
                    ep["nic"],
                    probability=ep["probability"],
                    start=ep["start"],
                    stop=ep["start"] + ep["duration"],
                    label=f"chaos-{i}",
                )
            elif kind == "node_crash":
                sched.node_crash(ep["node"], at=ep["start"], duration=ep["duration"])
            elif kind == "silent_degrade":
                sched.silent_degrade(
                    ep["nic"],
                    at=ep["start"],
                    bw_factor=ep["bw_factor"],
                    duration=ep["duration"],
                )
            elif kind == "spine_outage":
                t = ep["start"]
                spines = max(1, int(ep["spines"]))
                spine = int(ep.get("first", 0)) % spines
                for _ in range(ep["outages"]):
                    sched.spine_down(
                        f"{ep['switch']}.spine{spine}",
                        at=t,
                        duration=ep["duration"],
                    )
                    spine = (spine + 1) % spines
                    t = _round(t + 1.5 * ep["duration"])
            elif kind == "link_flap":
                sched.port_flapping(
                    f"{ep['switch']}.{ep['node']}",
                    period=ep["period"],
                    duty=ep["duty"],
                    start=ep["start"],
                    cycles=ep["cycles"],
                )
            elif kind == "pod_partition":
                for node in ep["nodes"]:
                    sched.link_down(
                        f"{ep['switch']}.{node}",
                        at=ep["start"],
                        duration=ep["duration"],
                    )
            else:
                raise ConfigurationError(f"unknown chaos episode kind {kind!r}")
        return sched

    # ------------------------------------------------------------------ #
    # (de)serialization — lossless round trip
    # ------------------------------------------------------------------ #

    def to_json(self) -> Dict[str, Any]:
        out = {
            "seed": self.seed,
            "nics": list(self.nics),
            "nodes": list(self.nodes),
            "horizon": self.horizon,
            "intensity": self.intensity,
            "silent": self.silent,
            "episodes": [dict(e) for e in self.episodes],
        }
        if self.fabric is not None:
            out["fabric"] = dict(self.fabric)
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        if not isinstance(data, dict):
            raise ConfigurationError(f"chaos schedule must be a mapping: {data!r}")
        unknown = set(data) - {
            "seed", "nics", "nodes", "horizon", "intensity", "silent",
            "episodes", "fabric",
        }
        if unknown:
            raise ConfigurationError(f"unknown chaos keys: {sorted(unknown)}")
        return cls(
            seed=int(data["seed"]),
            nics=tuple(data.get("nics", ("myri10g0", "quadrics1"))),
            nodes=tuple(data.get("nodes", ("node0", "node1"))),
            horizon=float(data.get("horizon", DEFAULT_HORIZON)),
            intensity=int(data.get("intensity", DEFAULT_INTENSITY)),
            episodes=[dict(e) for e in data.get("episodes", [])],
            silent=bool(data.get("silent", False)),
            fabric=data.get("fabric"),
        )


# ---------------------------------------------------------------------- #
# scenario execution
# ---------------------------------------------------------------------- #


@dataclass
class ScenarioResult:
    """Outcome of one chaos scenario (one seed, one run)."""

    seed: int
    ok: bool
    violation: Optional[InvariantViolation]
    elapsed_us: float
    messages_sent: int
    messages_completed: int
    messages_degraded: int
    retries_issued: int
    duplicates_suppressed: int
    deliveries_cancelled: int
    faults_fired: int
    checks_performed: int
    #: flight-recorder post-mortem for the violation (None when ok or
    #: when the recorder was not armed) — see repro.obs.flight
    flight_dump: Optional[Dict[str, Any]] = None
    #: metrics snapshot (only with ``run_scenario(obs_metrics=True)``);
    #: merged across shards by repro.bench.parallel.soak_obs_artifact
    metrics_snapshot: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "seed": self.seed,
            "ok": self.ok,
            "elapsed_us": self.elapsed_us,
            "messages_sent": self.messages_sent,
            "messages_completed": self.messages_completed,
            "messages_degraded": self.messages_degraded,
            "retries_issued": self.retries_issued,
            "duplicates_suppressed": self.duplicates_suppressed,
            "deliveries_cancelled": self.deliveries_cancelled,
            "faults_fired": self.faults_fired,
            "checks_performed": self.checks_performed,
        }
        if self.violation is not None:
            out["violation"] = self.violation.to_dict()
        if self.flight_dump is not None:
            out["flight_dump"] = self.flight_dump
        return out


def _reset_id_counters() -> None:
    """Restart the process-global message/transfer id counters.

    Ids only need to be unique within one simulator; restarting them per
    scenario makes every scenario self-contained — the same seed yields
    the same ids (and therefore byte-identical traces) no matter how
    many scenarios ran before it in this process.
    """
    import repro.core.packets as packets
    import repro.networks.transfer as transfer

    packets._msg_seq = itertools.count()
    transfer._transfer_ids = itertools.count()


def _seeded_workload(cluster, chaos: ChaosSchedule, seed: int) -> List[Any]:
    """Post a deterministic message mix racing the fault episodes.

    Every receive is posted up front (tag-matched), sends are staggered
    through the first 60% of the horizon so faults land before, between
    and inside transfers.  All draws come from ``random.Random(
    f"workload:{seed}")`` — independent of the chaos draws, so editing
    the episode generator never perturbs the workload and vice versa.
    """
    rng = random.Random(f"workload:{seed}")
    sender, receiver = cluster.sessions("node0", "node1")
    count = 6 + rng.randrange(7)
    messages: List[Any] = []
    send_engine = cluster.engine("node0")
    for tag in range(count):
        receiver.irecv(tag=tag)
    for tag in range(count):
        size = rng.choice(_WORKLOAD_SIZES)
        at = _round(rng.uniform(0.0, 0.6 * chaos.horizon))
        cluster.sim.schedule_at(
            at,
            lambda s=size, t=tag: messages.append(
                send_engine.isend("node1", s, tag=t)
            ),
        )
    return messages


def fabric_spec(shape: str, rails: int = 2) -> Dict[str, Any]:
    """The chaos ``fabric`` dict matching :func:`run_scenario`'s build.

    Switch names follow ``ClusterBuilder.build``'s naming: one
    ``fattree<i>`` / ``switch<i>`` per rail, in rail order.
    """
    if shape not in ("flat", "fat_tree"):
        raise ConfigurationError(
            f"fabric_spec wants 'flat' or 'fat_tree', got {shape!r}"
        )
    prefix = "fattree" if shape == "fat_tree" else "switch"
    return {
        "switches": [f"{prefix}{i}" for i in range(rails)],
        "spines": FABRIC_SPINES if shape == "fat_tree" else 0,
    }


def _default_chaos(
    seed: int,
    shape: str,
    ranks: int,
    horizon: float,
    intensity: int,
    silent: bool = False,
) -> ChaosSchedule:
    """The schedule :func:`run_scenario` generates when none is given."""
    if shape == "paper":
        return ChaosSchedule(
            seed, horizon=horizon, intensity=intensity, silent=silent
        )
    return ChaosSchedule(
        seed,
        nodes=tuple(f"rank{i}" for i in range(ranks)),
        horizon=horizon,
        intensity=intensity,
        silent=silent,
        fabric=fabric_spec(shape),
    )


def _fabric_workload(world, seed: int) -> List[List[int]]:
    """Spawn a seeded re-planning alltoallv racing the fabric faults.

    An MoE-skewed matrix (random base size, skew and hot destinations
    from ``random.Random(f"workload:{seed}")``) driven by every rank
    with ``algorithm="replan"`` — the schedule the fault episodes are
    aimed at.  Returns the matrix (byte totals feed the report).
    """
    from repro.api.collectives import moe_matrix

    rng = random.Random(f"workload:{seed}")
    n = world.size
    base = rng.choice((16 * 1024, 64 * 1024))
    skew = rng.randrange(4, 9)
    hot = sorted(rng.sample(range(n), max(1, n // 4)))
    matrix = moe_matrix(n, base, hot=hot, skew=skew)
    for comm in world.comms:
        world.cluster.sim.spawn(comm.alltoallv(matrix, algorithm="replan"))
    return matrix


def _violation_flight_dump(cluster, violation) -> Optional[Dict[str, Any]]:
    """The post-mortem for a violation (snapshotting if none landed)."""
    if violation is None:
        return None
    flight = cluster.obs.flight
    dump = flight.last_dump()
    if dump is None or dump.get("reason") != "invariant-violation":
        # Mid-run violations (monitor raises inside cluster.run())
        # bypass check_drain's trigger — snapshot the ring now.
        dump = flight.trigger(
            "invariant-violation",
            cluster.sim.now,
            detail={
                "invariant": violation.invariant,
                "message": violation.detail,
            },
        )
    return dump


def _run_fabric_scenario(
    seed: int,
    chaos: Optional[ChaosSchedule],
    shape: str,
    ranks: int,
    strategy: str,
    horizon: float,
    intensity: int,
    invariants: bool,
    obs_metrics: bool,
) -> ScenarioResult:
    """One chaos scenario on an N-rank switched fabric.

    The fabric analogue of the paper-testbed path: same watchdog, same
    invariant monitor, same flight recorder — but the cluster is a
    flat-switch or fat-tree fabric, the fault pool includes spine
    outages / link flaps / pod partitions, and the workload is a
    re-planning alltoallv across all ranks.
    """
    from repro.api.cluster import ClusterBuilder
    from repro.api.mpi import MpiWorld
    from repro.bench.runners import default_profiles
    from repro.hardware.topology import Fabric

    rails = ("myri10g", "quadrics")
    if ranks < 2:
        raise ConfigurationError(f"fabric chaos needs >= 2 ranks, got {ranks}")
    if chaos is None:
        chaos = _default_chaos(seed, shape, ranks, horizon, intensity)
    _reset_id_counters()
    if shape == "fat_tree":
        fab = Fabric.fat_tree(
            ranks,
            rails,
            pod_size=FABRIC_POD_SIZE,
            spines=FABRIC_SPINES,
            prefix="rank",
        )
    else:
        fab = Fabric.flat(ranks, rails, prefix="rank")
    builder = (
        ClusterBuilder(strategy)
        .fabric(fab)
        .sampling(profiles=default_profiles(rails))
        .resilience(timeout=CHAOS_TIMEOUT, max_retries=CHAOS_MAX_RETRIES)
        .faults(chaos.schedule())
        .observability(
            trace=False, metrics=obs_metrics, accuracy=False, collectives=False
        )
    )
    if invariants:
        builder.invariants()
    cluster = builder.build()
    monitor = cluster.invariants
    if monitor is not None:
        monitor.bind_context(seed=seed, schedule=chaos.to_json())
    violation: Optional[InvariantViolation] = None
    try:
        _fabric_workload(MpiWorld.from_cluster(cluster), seed)
        cluster.run()
        cluster.check_drain()
    except InvariantViolation as exc:
        violation = exc
    engines = cluster.engines.values()
    return ScenarioResult(
        seed=seed,
        ok=violation is None,
        violation=violation,
        elapsed_us=cluster.sim.now,
        messages_sent=sum(e.messages_sent for e in engines),
        messages_completed=sum(e.messages_completed for e in engines),
        messages_degraded=sum(e.messages_degraded for e in engines),
        retries_issued=sum(e.retries_issued for e in engines),
        duplicates_suppressed=sum(e.duplicates_suppressed for e in engines),
        deliveries_cancelled=sum(e.deliveries_cancelled for e in engines),
        faults_fired=(
            cluster.fault_injector.faults_fired if cluster.fault_injector else 0
        ),
        checks_performed=monitor.checks_performed if monitor else 0,
        flight_dump=_violation_flight_dump(cluster, violation),
        metrics_snapshot=(
            cluster.obs.metrics.snapshot() if obs_metrics else None
        ),
    )


def run_scenario(
    seed: int,
    chaos: Optional[ChaosSchedule] = None,
    strategy: str = "hetero_split",
    horizon: float = DEFAULT_HORIZON,
    intensity: int = DEFAULT_INTENSITY,
    invariants: bool = True,
    silent: bool = False,
    calibration: bool = False,
    obs_metrics: bool = False,
    shape: str = "paper",
    ranks: int = 8,
) -> ScenarioResult:
    """Run one chaos scenario: paper testbed + seeded faults + invariants.

    Builds the §IV testbed with the watchdog armed and the invariant
    monitor installed, injects ``chaos`` (generated from ``seed`` when
    not given), drives the seeded workload to drain, then audits the
    drained cluster.  Never raises on a violation — it is captured in
    the returned :class:`ScenarioResult` (soak loops keep going).

    ``invariants=False`` runs the same scenario without the monitor —
    the BENCH_PR4 overhead comparison; only the drain check remains.

    ``silent=True`` draws episodes from the pool that includes
    unannounced bandwidth drops; ``calibration=True`` arms the drift
    loop so those drops can be detected and re-sampled away mid-run.

    The flight recorder is always armed (cheap ring; a violating seed
    ships its own post-mortem in ``flight_dump``).  ``obs_metrics=True``
    additionally arms the metrics registry and attaches its snapshot to
    the result — the per-shard input to
    :func:`repro.bench.parallel.soak_obs_artifact`'s merge.

    ``shape`` picks the testbed: ``"paper"`` (default, the two-node §IV
    testbed), or a switched fabric — ``"flat"`` (one crossbar per rail)
    or ``"fat_tree"`` (two-tier, :data:`FABRIC_SPINES` spines) across
    ``ranks`` nodes, where the episode pool additionally draws
    :data:`FABRIC_EPISODE_KINDS` and the workload is a re-planning
    alltoallv (``silent``/``calibration`` are paper-shape only).
    """
    from repro.api.cluster import ClusterBuilder
    from repro.bench.runners import default_profiles

    if shape not in CHAOS_SHAPES:
        raise ConfigurationError(
            f"chaos shape must be one of {CHAOS_SHAPES}, got {shape!r}"
        )
    if shape != "paper":
        return _run_fabric_scenario(
            seed,
            chaos,
            shape,
            ranks,
            strategy,
            horizon,
            intensity,
            invariants,
            obs_metrics,
        )
    if chaos is None:
        chaos = ChaosSchedule(
            seed, horizon=horizon, intensity=intensity, silent=silent
        )
    _reset_id_counters()
    builder = (
        ClusterBuilder.paper_testbed(strategy=strategy)
        .sampling(profiles=default_profiles(("myri10g", "quadrics")))
        .resilience(timeout=CHAOS_TIMEOUT, max_retries=CHAOS_MAX_RETRIES)
        .faults(chaos.schedule())
        # Flight recorder always on: a cheap ring of recent events, so a
        # violating seed ships its own post-mortem.  Purely passive —
        # the obs contract guarantees identical timestamps either way.
        .observability(
            trace=False, metrics=obs_metrics, accuracy=False, collectives=False
        )
    )
    if invariants:
        builder.invariants()
    if calibration:
        builder.calibration()
    cluster = builder.build()
    monitor = cluster.invariants
    if monitor is not None:
        monitor.bind_context(seed=seed, schedule=chaos.to_json())
    violation: Optional[InvariantViolation] = None
    messages: List[Any] = []
    try:
        messages = _seeded_workload(cluster, chaos, seed)
        cluster.run()
        cluster.check_drain()
    except InvariantViolation as exc:
        violation = exc
    flight_dump = _violation_flight_dump(cluster, violation)
    engine = cluster.engine("node0")
    return ScenarioResult(
        seed=seed,
        ok=violation is None,
        violation=violation,
        elapsed_us=cluster.sim.now,
        messages_sent=len(messages),
        messages_completed=sum(
            e.messages_completed for e in cluster.engines.values()
        ),
        messages_degraded=sum(
            e.messages_degraded for e in cluster.engines.values()
        ),
        retries_issued=engine.retries_issued,
        duplicates_suppressed=sum(
            e.duplicates_suppressed for e in cluster.engines.values()
        ),
        deliveries_cancelled=sum(
            e.deliveries_cancelled for e in cluster.engines.values()
        ),
        faults_fired=(
            cluster.fault_injector.faults_fired if cluster.fault_injector else 0
        ),
        checks_performed=monitor.checks_performed if monitor else 0,
        flight_dump=flight_dump,
        metrics_snapshot=(
            cluster.obs.metrics.snapshot() if obs_metrics else None
        ),
    )


# ---------------------------------------------------------------------- #
# soak
# ---------------------------------------------------------------------- #


@dataclass
class SoakReport:
    """Aggregate outcome of a multi-seed chaos soak."""

    scenarios: List[ScenarioResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: minimal shrunk schedules per failing seed (when shrinking ran)
    shrunk: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def violations(self) -> List[ScenarioResult]:
        return [s for s in self.scenarios if not s.ok]

    @property
    def scenarios_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.scenarios) / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenarios": len(self.scenarios),
            "violations": len(self.violations),
            "scenarios_per_sec": self.scenarios_per_sec,
            "wall_seconds": self.wall_seconds,
            "results": [s.to_dict() for s in self.scenarios],
            "shrunk": {str(k): v for k, v in self.shrunk.items()},
        }

    def summary(self) -> str:
        ok = len(self.scenarios) - len(self.violations)
        lines = [
            f"chaos soak: {len(self.scenarios)} scenario(s), {ok} clean, "
            f"{len(self.violations)} violation(s), "
            f"{self.scenarios_per_sec:.2f} scenarios/sec"
        ]
        for bad in self.violations:
            assert bad.violation is not None
            lines.append(
                f"  seed {bad.seed}: {bad.violation.invariant} — "
                f"{bad.violation.detail}"
            )
            if bad.seed in self.shrunk:
                eps = self.shrunk[bad.seed].get("episodes", [])
                kinds = ", ".join(e["kind"] for e in eps)
                lines.append(
                    f"    shrunk to {len(eps)} episode(s): {kinds}"
                )
        return "\n".join(lines)


def soak(
    seeds,
    strategy: str = "hetero_split",
    horizon: float = DEFAULT_HORIZON,
    intensity: int = DEFAULT_INTENSITY,
    shrink_failures: bool = False,
    invariants: bool = True,
    silent: bool = False,
    calibration: bool = False,
    shape: str = "paper",
    ranks: int = 8,
) -> SoakReport:
    """Run a chaos scenario per seed; collect outcomes, never abort.

    ``seeds`` is an iterable of ints (or an int: ``range(seeds)``).
    With ``shrink_failures``, every failing seed's schedule is reduced
    to a minimal still-failing episode set (:func:`shrink`) and attached
    to the report.  ``silent``/``calibration`` run the silent-degrade
    pool with the drift loop armed (the PR 5 soak).  ``shape``/``ranks``
    pick the testbed per :func:`run_scenario` — the fabric soak.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    report = SoakReport()
    t0 = time.perf_counter()
    for seed in seeds:
        result = run_scenario(
            seed,
            strategy=strategy,
            horizon=horizon,
            intensity=intensity,
            invariants=invariants,
            silent=silent,
            calibration=calibration,
            shape=shape,
            ranks=ranks,
        )
        report.scenarios.append(result)
        if not result.ok and shrink_failures:
            minimal = shrink(
                seed,
                strategy=strategy,
                horizon=horizon,
                intensity=intensity,
                shape=shape,
                ranks=ranks,
            )
            report.shrunk[seed] = minimal.to_json()
    report.wall_seconds = time.perf_counter() - t0
    return report


# ---------------------------------------------------------------------- #
# shrinking
# ---------------------------------------------------------------------- #


def shrink(
    seed: int,
    strategy: str = "hetero_split",
    horizon: float = DEFAULT_HORIZON,
    intensity: int = DEFAULT_INTENSITY,
    max_runs: int = 64,
    shape: str = "paper",
    ranks: int = 8,
) -> ChaosSchedule:
    """Reduce a failing seed's schedule to a minimal failing episode set.

    Greedy delta-debugging over episodes: repeatedly try dropping one
    episode; keep any drop after which the scenario still violates.
    Terminates when no single episode can be removed (1-minimal) or
    after ``max_runs`` scenario executions.  Returns the reduced
    :class:`ChaosSchedule` — deterministic, so the returned schedule
    replays the violation via ``run_scenario(seed, chaos=shrunk)``.
    Works over mixed node + fabric episode sets: with a fabric
    ``shape``, candidate subsets keep the base schedule's ``fabric``
    spec, so spine/link episodes replay against the same switch names.
    """
    base = _default_chaos(seed, shape, ranks, horizon, intensity)

    def fails(episodes: List[Dict[str, Any]]) -> bool:
        candidate = ChaosSchedule(
            seed,
            nics=base.nics,
            nodes=base.nodes,
            horizon=base.horizon,
            intensity=base.intensity,
            episodes=episodes,
            fabric=base.fabric,
        )
        return not run_scenario(
            seed, chaos=candidate, strategy=strategy, shape=shape, ranks=ranks
        ).ok

    runs = 0
    if not fails(base.episodes):
        # Nothing to shrink: the full schedule passes.
        return base
    episodes = list(base.episodes)
    reduced = True
    while reduced and runs < max_runs:
        reduced = False
        for i in range(len(episodes)):
            trial = episodes[:i] + episodes[i + 1 :]
            runs += 1
            if runs >= max_runs:
                break
            if fails(trial):
                episodes = trial
                reduced = True
                break
    return ChaosSchedule(
        seed,
        nics=base.nics,
        nodes=base.nodes,
        horizon=base.horizon,
        intensity=base.intensity,
        episodes=episodes,
        fabric=base.fabric,
    )


__all__ = [
    "CHAOS_MAX_RETRIES",
    "CHAOS_SHAPES",
    "CHAOS_TIMEOUT",
    "ChaosSchedule",
    "DEFAULT_HORIZON",
    "DEFAULT_INTENSITY",
    "EPISODE_KINDS",
    "FABRIC_EPISODE_KINDS",
    "FABRIC_POD_SIZE",
    "FABRIC_SPINES",
    "SILENT_EPISODE_KINDS",
    "ScenarioResult",
    "SoakReport",
    "fabric_spec",
    "run_scenario",
    "shrink",
    "soak",
]
