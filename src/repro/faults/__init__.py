"""Deterministic fault injection for the simulated multirail engine.

The paper assumes healthy rails; this package drops that assumption
without giving up reproducibility.  A :class:`FaultSchedule` describes
*what* breaks (NIC down/up windows, bandwidth/latency degradation,
eager-packet loss, stalled rendezvous handshakes) and *when*; a
:class:`FaultInjector` replays it through the ordinary event queue, so a
faulty run is exactly as deterministic as a healthy one.

See ``docs/faults.md`` for the full model, including how the engine
re-plans stranded chunks and the ``DegradedSend`` retry contract.

Chaos testing (``docs/chaos.md``): :class:`ChaosSchedule` expands a seed
into a randomized-but-reproducible episode composition (including
node-level crash/restart); :func:`soak` runs many seeded scenarios under
the :class:`~repro.core.invariants.InvariantMonitor`; :func:`shrink`
reduces a failing seed to a minimal schedule.
"""

from repro.faults.schedule import FaultAction, FaultSchedule
from repro.faults.injector import FaultInjector, install_faults
from repro.faults.chaos import (
    ChaosSchedule,
    ScenarioResult,
    SoakReport,
    run_scenario,
    shrink,
    soak,
)

__all__ = [
    "FaultAction",
    "FaultSchedule",
    "FaultInjector",
    "install_faults",
    "ChaosSchedule",
    "ScenarioResult",
    "SoakReport",
    "run_scenario",
    "shrink",
    "soak",
]
