"""Deterministic fault injection for the simulated multirail engine.

The paper assumes healthy rails; this package drops that assumption
without giving up reproducibility.  A :class:`FaultSchedule` describes
*what* breaks (NIC down/up windows, bandwidth/latency degradation,
eager-packet loss, stalled rendezvous handshakes) and *when*; a
:class:`FaultInjector` replays it through the ordinary event queue, so a
faulty run is exactly as deterministic as a healthy one.

See ``docs/faults.md`` for the full model, including how the engine
re-plans stranded chunks and the ``DegradedSend`` retry contract.
"""

from repro.faults.schedule import FaultAction, FaultSchedule
from repro.faults.injector import FaultInjector, install_faults

__all__ = [
    "FaultAction",
    "FaultSchedule",
    "FaultInjector",
    "install_faults",
]
