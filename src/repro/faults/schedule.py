"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultSchedule` is a plain list of timestamped
:class:`FaultAction` records plus a seed.  It never touches the
simulator — :class:`~repro.faults.injector.FaultInjector` turns it into
ordinary scheduled events, which is what keeps faulty runs
bit-reproducible: the schedule is data, the injection is deterministic
event delivery, and every random draw (packet loss) comes from an RNG
seeded from ``(schedule.seed, rule identity)``.

NIC addressing: actions name NICs either fully qualified
(``"node0.myri10g0"``) or bare (``"myri10g0"``), in which case the
action applies to that NIC on *every* node — convenient for killing both
endpoints of a point-to-point rail at once.  The wildcard form
``"node0.*"`` addresses every NIC of one node — the node-level fault
class (crash/restart) used by :meth:`FaultSchedule.node_crash`.

Times accept anything :func:`repro.util.units.parse_time` does
(``"2ms"``, ``"500us"``, plain µs floats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.util.errors import ConfigurationError
from repro.util.units import parse_time

#: actions a schedule may contain, with their recognised parameters
_ACTIONS = {
    "down": (),
    "up": (),
    "degrade": ("bw_factor", "extra_latency"),
    "restore": (),
    "silent_degrade": ("bw_factor",),
    "silent_restore": (),
    "drop_start": ("probability", "kinds", "label"),
    "drop_stop": ("label",),
    # Fabric-targeted actions (PR 10).  The ``nic`` field names a switch
    # port or spine instead of a NIC: ``"fattree0.node3"`` (the edge
    # link of one node), ``"fattree0.*"`` (every edge link),
    # ``"fattree0.spine1"`` or ``"fattree0.spine*"``.  The injector
    # resolves these against the cluster's switches.
    "link_down": (),
    "link_up": (),
    "link_degrade": ("bw_factor", "extra_latency"),
    "link_restore": (),
    "spine_down": (),
    "spine_up": (),
    "spine_degrade": ("bw_factor",),
    "spine_restore": (),
}

#: the subset of actions resolved against switches rather than NICs
FABRIC_ACTIONS = frozenset(
    a for a in _ACTIONS if a.startswith(("link_", "spine_"))
)


@dataclass(frozen=True)
class FaultAction:
    """One timestamped fault transition aimed at one NIC (or NIC name)."""

    time: float
    nic: str
    action: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"fault scheduled in the past: {self.time}")
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"known: {sorted(_ACTIONS)}"
            )
        unknown = set(self.params) - set(_ACTIONS[self.action])
        if unknown:
            raise ConfigurationError(
                f"fault action {self.action!r} does not take {sorted(unknown)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "time": self.time,
            "nic": self.nic,
            "action": self.action,
        }
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultAction":
        if not isinstance(data, dict):
            raise ConfigurationError(f"fault entry must be a mapping, got {data!r}")
        unknown = set(data) - {"time", "nic", "action", "params"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault entry keys: {sorted(unknown)}"
            )
        for key in ("time", "nic", "action"):
            if key not in data:
                raise ConfigurationError(f"fault entry missing {key!r}: {data!r}")
        return cls(
            time=parse_time(data["time"]),
            nic=str(data["nic"]),
            action=str(data["action"]),
            params=dict(data.get("params", {})),
        )


class FaultSchedule:
    """Builder for deterministic fault timelines.

    All mutators return ``self`` for chaining::

        schedule = (
            FaultSchedule(seed=7)
            .nic_down("node0.myri10g0", at="1ms", duration="500us")
            .degrade("quadrics0", at=0.0, bw_factor=0.5)
            .eager_loss("node1.myri10g0", probability=0.1, start="2ms")
        )
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.actions: List[FaultAction] = []

    def __len__(self) -> int:
        return len(self.actions)

    def __repr__(self) -> str:
        return f"<FaultSchedule seed={self.seed} actions={len(self.actions)}>"

    def _add(self, time, nic: str, action: str, **params) -> "FaultSchedule":
        self.actions.append(
            FaultAction(parse_time(time), str(nic), action, params)
        )
        return self

    # ------------------------------------------------------------------ #
    # link up/down
    # ------------------------------------------------------------------ #

    def nic_down(self, nic: str, at, duration=None) -> "FaultSchedule":
        """Take ``nic`` down at ``at``; back up after ``duration`` if given."""
        start = parse_time(at)
        self._add(start, nic, "down")
        if duration is not None:
            self._add(start + parse_time(duration), nic, "up")
        return self

    def nic_up(self, nic: str, at) -> "FaultSchedule":
        return self._add(at, nic, "up")

    def node_crash(self, node: str, at, duration=None) -> "FaultSchedule":
        """Crash a whole node: every one of its NICs goes down at ``at``.

        A node-level fault, one class above per-NIC outages: *all* rails
        out of ``node`` die in the same instant (transfers pending on any
        of them abort; packets in flight towards them are lost), and —
        when ``duration`` is given — all come back together, modelling a
        reboot.  Addresses the injector's ``"<node>.*"`` wildcard.
        """
        start = parse_time(at)
        self._add(start, f"{node}.*", "down")
        if duration is not None:
            self._add(start + parse_time(duration), f"{node}.*", "up")
        return self

    def flapping(
        self,
        nic: str,
        period,
        duty: float = 0.5,
        start=0.0,
        cycles: int = 1,
    ) -> "FaultSchedule":
        """A flapping link: each ``period``, down for ``duty`` of it.

        ``duty`` is the *down* fraction — ``duty=0.5`` means the rail is
        dead half the time.  Expands to ``cycles`` explicit down/up pairs
        so the resulting schedule round-trips through config files.
        """
        if not 0.0 < duty < 1.0:
            raise ConfigurationError(f"flapping duty must be in (0, 1), got {duty}")
        if cycles < 1:
            raise ConfigurationError(f"flapping needs >= 1 cycle, got {cycles}")
        p = parse_time(period)
        if p <= 0:
            raise ConfigurationError(f"flapping period must be positive, got {p}")
        t = parse_time(start)
        for _ in range(cycles):
            self.nic_down(nic, at=t, duration=duty * p)
            t += p
        return self

    # ------------------------------------------------------------------ #
    # degradation
    # ------------------------------------------------------------------ #

    def degrade(
        self,
        nic: str,
        at,
        bw_factor: float = 1.0,
        extra_latency=0.0,
        duration=None,
    ) -> "FaultSchedule":
        """Stretch ``nic``'s timings from ``at`` (optionally for ``duration``)."""
        start = parse_time(at)
        self._add(
            start,
            nic,
            "degrade",
            bw_factor=float(bw_factor),
            extra_latency=parse_time(extra_latency),
        )
        if duration is not None:
            self._add(start + parse_time(duration), nic, "restore")
        return self

    def restore(self, nic: str, at) -> "FaultSchedule":
        return self._add(at, nic, "restore")

    def silent_degrade(
        self,
        nic: str,
        at,
        bw_factor: float = 0.5,
        duration=None,
    ) -> "FaultSchedule":
        """Slow ``nic`` *without announcing it* — no fault event, no
        ``is_degraded`` flip, no obs instant.  The predictor keeps using
        the stale healthy profile; only the calibration drift loop
        (``repro.core.calibration``) can notice the error growth."""
        start = parse_time(at)
        self._add(start, nic, "silent_degrade", bw_factor=float(bw_factor))
        if duration is not None:
            self._add(start + parse_time(duration), nic, "silent_restore")
        return self

    def silent_restore(self, nic: str, at) -> "FaultSchedule":
        return self._add(at, nic, "silent_restore")

    # ------------------------------------------------------------------ #
    # packet loss
    # ------------------------------------------------------------------ #

    def eager_loss(
        self,
        nic: str,
        probability: float,
        start=0.0,
        stop=None,
        label: str = "eager-loss",
    ) -> "FaultSchedule":
        """Drop outgoing eager packets with ``probability`` from ``start``."""
        return self._loss(
            nic, probability, ("eager",), start, stop, label
        )

    def rdv_stall(
        self,
        nic: str,
        probability: float,
        start=0.0,
        stop=None,
        label: str = "rdv-stall",
    ) -> "FaultSchedule":
        """Lose rendezvous control packets (stalled handshakes)."""
        return self._loss(
            nic, probability, ("rdv-req", "rdv-ack"), start, stop, label
        )

    def _loss(
        self, nic: str, probability: float, kinds, start, stop, label: str
    ) -> "FaultSchedule":
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"drop probability {probability} outside [0, 1]"
            )
        t0 = parse_time(start)
        self._add(
            t0,
            nic,
            "drop_start",
            probability=float(probability),
            kinds=list(kinds),
            label=label,
        )
        if stop is not None:
            self._add(parse_time(stop), nic, "drop_stop", label=label)
        return self

    # ------------------------------------------------------------------ #
    # fabric faults: switch links and spines
    # ------------------------------------------------------------------ #

    def link_down(self, link: str, at, duration=None) -> "FaultSchedule":
        """Kill a switch edge link (``"fattree0.node3"``, or
        ``"fattree0.*"`` for every port) at ``at``; a dead link rejects
        traffic in both directions.  Back up after ``duration`` if given."""
        start = parse_time(at)
        self._add(start, link, "link_down")
        if duration is not None:
            self._add(start + parse_time(duration), link, "link_up")
        return self

    def link_up(self, link: str, at) -> "FaultSchedule":
        return self._add(at, link, "link_up")

    def link_degrade(
        self,
        link: str,
        at,
        bw_factor: float = 1.0,
        extra_latency=0.0,
        duration=None,
    ) -> "FaultSchedule":
        """Stretch one edge link's drain/latency from ``at``."""
        start = parse_time(at)
        self._add(
            start,
            link,
            "link_degrade",
            bw_factor=float(bw_factor),
            extra_latency=parse_time(extra_latency),
        )
        if duration is not None:
            self._add(start + parse_time(duration), link, "link_restore")
        return self

    def link_restore(self, link: str, at) -> "FaultSchedule":
        return self._add(at, link, "link_restore")

    def spine_down(self, spine: str, at, duration=None) -> "FaultSchedule":
        """Kill a fat-tree spine (``"fattree0.spine1"``, or
        ``"fattree0.spine*"`` for all of them).  A dead spine serializes
        nothing: flows hashed onto it re-route (adaptive) or drop
        (static)."""
        start = parse_time(at)
        self._add(start, spine, "spine_down")
        if duration is not None:
            self._add(start + parse_time(duration), spine, "spine_up")
        return self

    def spine_up(self, spine: str, at) -> "FaultSchedule":
        return self._add(at, spine, "spine_up")

    def spine_degrade(
        self, spine: str, at, bw_factor: float = 0.5, duration=None
    ) -> "FaultSchedule":
        """Slow one spine's serialization rate by ``bw_factor``."""
        start = parse_time(at)
        self._add(start, spine, "spine_degrade", bw_factor=float(bw_factor))
        if duration is not None:
            self._add(start + parse_time(duration), spine, "spine_restore")
        return self

    def spine_restore(self, spine: str, at) -> "FaultSchedule":
        return self._add(at, spine, "spine_restore")

    def port_flapping(
        self,
        link: str,
        period,
        duty: float = 0.5,
        start=0.0,
        cycles: int = 1,
    ) -> "FaultSchedule":
        """A flapping switch port: each ``period``, down for ``duty`` of
        it — the fabric-side analogue of :meth:`flapping`."""
        if not 0.0 < duty < 1.0:
            raise ConfigurationError(
                f"port_flapping duty must be in (0, 1), got {duty}"
            )
        if cycles < 1:
            raise ConfigurationError(
                f"port_flapping needs >= 1 cycle, got {cycles}"
            )
        p = parse_time(period)
        if p <= 0:
            raise ConfigurationError(
                f"port_flapping period must be positive, got {p}"
            )
        t = parse_time(start)
        for _ in range(cycles):
            self.link_down(link, at=t, duration=duty * p)
            t += p
        return self

    # ------------------------------------------------------------------ #
    # (de)serialization — the config-file round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "events": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"faults section must be a mapping, got {data!r}"
            )
        unknown = set(data) - {"seed", "events"}
        if unknown:
            raise ConfigurationError(
                f"unknown faults keys: {sorted(unknown)}"
            )
        schedule = cls(seed=int(data.get("seed", 0)))
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ConfigurationError(
                f"faults events must be a list, got {events!r}"
            )
        for entry in events:
            schedule.actions.append(FaultAction.from_dict(entry))
        return schedule

    def sorted_actions(self) -> List[FaultAction]:
        """Actions in firing order: by time, ties by insertion order."""
        indexed = sorted(
            enumerate(self.actions), key=lambda pair: (pair[1].time, pair[0])
        )
        return [a for _, a in indexed]
