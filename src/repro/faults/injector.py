"""Turn a :class:`FaultSchedule` into plain simulator events.

The injector is the only piece of the fault subsystem that touches the
simulation: at :meth:`FaultInjector.arm` time it walks the schedule in
deterministic order and books one ``schedule_at`` per action.  From then
on faults are ordinary events interleaved with the engine's own — two
runs of the same cluster + schedule produce bit-identical traces.

Packet-loss rules get a ``random.Random`` seeded from the schedule seed
plus the rule's identity, so loss draws are reproducible and independent
of unrelated schedule edits.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Tuple

from repro.core.invariants import NULL_INVARIANTS
from repro.faults.schedule import FABRIC_ACTIONS, FaultAction, FaultSchedule
from repro.networks.nic import DropRule, Nic
from repro.networks.switch import FatTreeSwitch, Switch
from repro.networks.transfer import TransferKind
from repro.obs import NULL_OBS
from repro.util.errors import ConfigurationError

#: fabric actions aimed at fat-tree spines rather than edge links
_SPINE_ACTIONS = frozenset(
    {"spine_down", "spine_up", "spine_degrade", "spine_restore"}
)


class FaultInjector:
    """Arms one fault schedule against one set of NICs."""

    def __init__(self, nics: Iterable[Nic], schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._by_qualified: Dict[str, Nic] = {}
        self._by_name: Dict[str, List[Nic]] = {}
        #: switches discovered behind the NICs, for fabric-targeted rules
        self._switches: Dict[str, Switch] = {}
        for nic in nics:
            self._by_qualified[nic.qualified_name] = nic
            self._by_name.setdefault(nic.name, []).append(nic)
            wire = getattr(nic, "wire", None)
            if isinstance(wire, Switch) and wire.name not in self._switches:
                self._switches[wire.name] = wire
        if not self._by_qualified:
            raise ConfigurationError("fault injector needs at least one NIC")
        self.sim = next(iter(self._by_qualified.values())).sim
        #: count of fault actions that have fired so far
        self.faults_fired: int = 0
        #: (simulated time, rule id, nic, action) per firing, in order —
        #: the audit trail the rule-ordering regression test reads
        self.fired_log: List[Tuple[float, int, str, str]] = []
        self._armed = False
        #: observability hub; install_faults swaps in the cluster-wide one
        self.obs = NULL_OBS
        #: invariant monitor; install_faults swaps in the cluster-wide one
        self.inv = NULL_INVARIANTS

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {len(self.schedule)} actions, "
            f"{self.faults_fired} fired>"
        )

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #

    def resolve(self, name: str) -> List[Nic]:
        """NICs a schedule entry addresses.

        Accepts a qualified name (``"node0.myri10g0"``), a bare NIC name
        (``"myri10g0"``, that NIC on every node) or a node wildcard
        (``"node0.*"``, every NIC of one node — node crash/restart).
        """
        if name in self._by_qualified:
            return [self._by_qualified[name]]
        if name in self._by_name:
            return list(self._by_name[name])
        if name.endswith(".*"):
            node = name[:-2]
            nics = [
                nic
                for nic in self._by_qualified.values()
                if nic.machine.name == node
            ]
            if nics:
                return nics
            raise ConfigurationError(
                f"fault schedule names unknown node {node!r}; known nodes: "
                f"{sorted({n.machine.name for n in self._by_qualified.values()})}"
            )
        raise ConfigurationError(
            f"fault schedule names unknown NIC {name!r}; "
            f"known: {sorted(self._by_qualified)}"
        )

    def resolve_fabric(self, name: str, action: str) -> List[tuple]:
        """Switch targets a fabric-targeted schedule entry addresses.

        Spine actions accept ``"fattree0.spine1"`` or the wildcard
        ``"fattree0.spine*"`` (also plain ``"fattree0.*"``); link actions
        accept ``"fattree0.node3"`` (the edge port of one node) or
        ``"fattree0.*"`` (every port).  Returns ``(switch, target,
        qualified)`` triples — ``target`` is a spine index or node name.
        """
        if "." not in name:
            raise ConfigurationError(
                f"fabric fault target {name!r} must be qualified "
                f"('<switch>.<port-or-spine>'); known switches: "
                f"{sorted(self._switches)}"
            )
        sw_name, _, target = name.partition(".")
        sw = self._switches.get(sw_name)
        if sw is None:
            raise ConfigurationError(
                f"fault schedule names unknown switch {sw_name!r}; "
                f"known: {sorted(self._switches)}"
            )
        if action in _SPINE_ACTIONS:
            if not isinstance(sw, FatTreeSwitch):
                raise ConfigurationError(
                    f"switch {sw_name!r} has no spines; {action!r} needs "
                    f"a fat-tree switch"
                )
            if target in ("spine*", "*"):
                indices = list(range(sw.spines))
            elif target.startswith("spine"):
                try:
                    k = int(target[len("spine"):])
                except ValueError:
                    raise ConfigurationError(
                        f"bad spine target {name!r}; expected "
                        f"'{sw_name}.spine<k>' or '{sw_name}.spine*'"
                    )
                sw._check_spine(k)
                indices = [k]
            else:
                raise ConfigurationError(
                    f"bad spine target {name!r}; expected "
                    f"'{sw_name}.spine<k>' or '{sw_name}.spine*'"
                )
            return [(sw, k, f"{sw_name}.spine{k}") for k in indices]
        port_nodes = [p.machine.name for p in sw._ports]
        if target == "*":
            nodes = port_nodes
        elif target in port_nodes:
            nodes = [target]
        else:
            raise ConfigurationError(
                f"switch {sw_name!r} has no port for node {target!r}; "
                f"ports: {sorted(port_nodes)}"
            )
        return [(sw, node, f"{sw_name}.{node}") for node in nodes]

    # ------------------------------------------------------------------ #
    # arming
    # ------------------------------------------------------------------ #

    def arm(self) -> "FaultInjector":
        """Book every schedule action as a simulator event (idempotent).

        Rule ids are assigned here, in ``sorted_actions()`` order (time,
        then schedule insertion order), and the events are booked in
        rule-id order — the simulator breaks same-instant ties by booking
        sequence, so two rules at one timestamp always apply in rule-id
        order, independent of event-heap internals.  The invariant
        monitor's ``fault-rule-order`` check audits exactly this.
        """
        if self._armed:
            return self
        self._armed = True
        for rule_id, action in enumerate(self.schedule.sorted_actions()):
            if action.action in FABRIC_ACTIONS:
                # Fabric rules share the node-rule id space: a node rule
                # and a spine rule at one timestamp still apply in
                # rule-id (booking) order.
                for sw, target, qualified in self.resolve_fabric(
                    action.nic, action.action
                ):
                    self.sim.schedule_at(
                        max(action.time, self.sim.now),
                        self._fire_fabric,
                        action,
                        sw,
                        target,
                        qualified,
                        rule_id,
                    )
                continue
            for nic in self.resolve(action.nic):  # resolves eagerly: typos
                # surface at arm time, not mid-run
                self.sim.schedule_at(
                    max(action.time, self.sim.now),
                    self._fire,
                    action,
                    nic,
                    rule_id,
                )
        return self

    def _fire(self, action: FaultAction, nic: Nic, rule_id: int) -> None:
        self.faults_fired += 1
        self.fired_log.append(
            (self.sim.now, rule_id, nic.qualified_name, action.action)
        )
        if self.inv.on:
            self.inv.on_fault(rule_id, action, self.sim.now)
        silent = action.action in ("silent_degrade", "silent_restore")
        obs = self.obs
        # Silent actions are the whole point of the calibration drift
        # loop: no metrics counter, no trace instant — nothing downstream
        # of obs may learn about them.  They still land in fired_log (the
        # injector's own audit trail) and the invariant rule-order check.
        if obs.on and not silent:
            obs.metrics.counter("faults.fired").inc()
            obs.metrics.counter(f"faults.{action.action}").inc()
            if obs.tracer.enabled:
                obs.tracer.instant(
                    nic.machine.name,
                    f"nic:{nic.name}",
                    f"fault:{action.action}",
                    self.sim.now,
                    cat="fault",
                    args={
                        "nic": nic.qualified_name,
                        "rule_id": rule_id,
                        "params": dict(action.params),
                    },
                )
        if action.action == "down":
            nic.fail()
        elif action.action == "up":
            nic.recover()
        elif action.action == "degrade":
            nic.degrade(
                bw_factor=action.params.get("bw_factor", 1.0),
                extra_latency=action.params.get("extra_latency", 0.0),
            )
        elif action.action == "restore":
            nic.restore()
        elif action.action == "silent_degrade":
            nic.silent_degrade(action.params.get("bw_factor", 0.5))
        elif action.action == "silent_restore":
            nic.silent_restore()
        elif action.action == "drop_start":
            label = action.params.get("label", "loss")
            kinds = frozenset(
                TransferKind(k) for k in action.params.get("kinds", ["eager"])
            )
            rng = random.Random(
                f"{self.schedule.seed}:{nic.qualified_name}:{label}:{rule_id}"
            )
            nic.drop_rules.append(
                DropRule(
                    kinds,
                    action.params.get("probability", 1.0),
                    rng,
                    label=label,
                )
            )
        elif action.action == "drop_stop":
            label = action.params.get("label", "loss")
            nic.drop_rules = [
                r for r in nic.drop_rules if r.label != label
            ]
        else:  # pragma: no cover - schedule validation rejects these
            raise ConfigurationError(f"unknown fault action {action.action!r}")

    def _fire_fabric(
        self,
        action: FaultAction,
        sw: Switch,
        target,
        qualified: str,
        rule_id: int,
    ) -> None:
        self.faults_fired += 1
        self.fired_log.append(
            (self.sim.now, rule_id, qualified, action.action)
        )
        if self.inv.on:
            self.inv.on_fault(rule_id, action, self.sim.now)
        obs = self.obs
        if obs.on:
            obs.metrics.counter("faults.fired").inc()
            obs.metrics.counter(f"faults.{action.action}").inc()
            if obs.tracer.enabled:
                obs.tracer.instant(
                    sw.name,
                    "fabric",
                    f"fault:{action.action}",
                    self.sim.now,
                    cat="fault",
                    args={
                        "target": qualified,
                        "rule_id": rule_id,
                        "params": dict(action.params),
                    },
                )
        a = action.action
        if a == "link_down":
            sw.link_fail(target)
        elif a == "link_up":
            sw.link_recover(target)
        elif a == "link_degrade":
            sw.link_degrade(
                target,
                bw_factor=action.params.get("bw_factor", 1.0),
                extra_latency=action.params.get("extra_latency", 0.0),
            )
        elif a == "link_restore":
            sw.link_restore(target)
        elif a == "spine_down":
            sw.spine_fail(target)
        elif a == "spine_up":
            sw.spine_recover(target)
        elif a == "spine_degrade":
            sw.spine_degrade(
                target, bw_factor=action.params.get("bw_factor", 0.5)
            )
        elif a == "spine_restore":
            sw.spine_restore(target)
        else:  # pragma: no cover - FABRIC_ACTIONS gates the dispatch
            raise ConfigurationError(f"unknown fabric action {a!r}")


def install_faults(cluster, schedule: FaultSchedule) -> FaultInjector:
    """Build and arm an injector over every NIC of a built cluster."""
    nics = [
        nic
        for machine in cluster.machines.values()
        for nic in machine.nics
    ]
    injector = FaultInjector(nics, schedule)
    injector.obs = getattr(cluster, "obs", NULL_OBS)
    injector.inv = getattr(cluster, "invariants", None) or NULL_INVARIANTS
    injector.arm()
    cluster.fault_injector = injector
    return injector
