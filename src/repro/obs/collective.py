"""Collective critical-path profiler: per-hop spans + post-run analysis.

The :class:`~repro.api.mpi.Communicator` wraps every collective call in
a profiling scope when observability is on (one ``obs.on`` read when
off).  The scope is purely passive: it marks the rank's send log before
the schedule runs and slices the messages the schedule posted after it
finishes — no extra events, no timestamp moved.  Each message becomes a
*hop* row once the run drains (``t_post``/``t_complete`` are stamped by
the engine either way).

Post-run analyzers:

* :func:`critical_path` — walks backwards from the globally
  last-completing hop through latest-finishing predecessors on the same
  endpoints: the serialization chain that bounded the collective's
  makespan.
* :func:`stragglers` — per-rank attribution: total hop time, last
  completion, hop count; the ranks at the top are where the makespan
  lives.
* :func:`predicted_vs_measured` — the per-hop-size table comparing the
  cost model's ``AlgorithmSelector.hop`` prediction with measured times;
  :meth:`AlgorithmSelector.calibrate` consumes exactly this table to
  close the "selector calibration against measured hop times" loop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class CollectiveProfiler:
    """Per-collective-invocation records with lazy hop materialization."""

    __slots__ = ("ops",)

    enabled = True

    def __init__(self) -> None:
        #: one dict per profiled collective call (any rank), in the
        #: deterministic order the simulator finished them
        self.ops: List[Dict] = []

    def __repr__(self) -> str:
        return f"<CollectiveProfiler {len(self.ops)} op(s)>"

    def finish_op(
        self,
        rank: int,
        node: str,
        collective: str,
        algorithm: str,
        nbytes: int,
        seq: int,
        t_start: float,
        t_end: float,
        msgs: List,
        hop_predict: Optional[Callable[[int], float]] = None,
    ) -> None:
        """Record one finished collective call on one rank.

        ``msgs`` are the Message objects the schedule posted from this
        rank (send-log slice); completion times are read lazily at
        snapshot time, after the run drained.  ``hop_predict`` maps a
        hop size to the cost model's predicted time (memoized selector
        lookup — a pure table read).
        """
        predicted = {}
        if hop_predict is not None:
            for m in msgs:
                if m.size not in predicted:
                    predicted[m.size] = hop_predict(m.size)
        self.ops.append(
            {
                "rank": rank,
                "node": node,
                "collective": collective,
                "algorithm": algorithm,
                "nbytes": nbytes,
                "seq": seq,
                "t_start": t_start,
                "t_end": t_end,
                "msgs": msgs,
                "predicted": predicted,
                "traced": False,
            }
        )

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #

    def hops(self) -> List[Dict]:
        """One row per message posted inside a profiled collective."""
        rows: List[Dict] = []
        for op in self.ops:
            for m in op["msgs"]:
                rows.append(
                    {
                        "collective": op["collective"],
                        "algorithm": op["algorithm"],
                        "seq": op["seq"],
                        "rank": op["rank"],
                        "node": op["node"],
                        "dst": m.dest,
                        "tag": m.tag,
                        "size": m.size,
                        "msg_id": m.msg_id,
                        "t_post": m.t_post,
                        "t_complete": m.t_complete,
                        "predicted_us": op["predicted"].get(m.size),
                    }
                )
        rows.sort(key=lambda h: (h["t_post"], h["node"], h["msg_id"]))
        return rows

    def op_rows(self) -> List[Dict]:
        """Op records without the message refs (JSON-able)."""
        rows = [
            {
                k: op[k]
                for k in (
                    "collective", "algorithm", "nbytes", "seq",
                    "rank", "node", "t_start", "t_end",
                )
            }
            for op in self.ops
        ]
        rows.sort(key=lambda o: (o["t_start"], o["node"], o["seq"]))
        return rows

    def snapshot(self) -> Dict[str, object]:
        hops = self.hops()
        return {
            "ops": self.op_rows(),
            "hops": hops,
            "critical_path": critical_path(hops),
            "stragglers": stragglers(hops),
            "predicted_vs_measured": predicted_vs_measured(hops),
        }

    def flush_to_tracer(self, tracer) -> None:
        """Emit op spans + completed hop spans (once per op) so Perfetto
        shows each rank's collective rounds; exporter re-sorts by ts."""
        if not tracer.enabled:
            return
        for op in self.ops:
            if op["traced"]:
                continue
            incomplete = [m for m in op["msgs"] if m.t_complete is None]
            if incomplete:
                # A fire-and-forget send is still in flight; emit this
                # op on a later flush (post-drain flushes see them all).
                continue
            op["traced"] = True
            name = f"{op['collective']}[{op['seq']}]"
            tracer.complete(
                op["node"], "collectives", name,
                op["t_start"], op["t_end"] - op["t_start"],
                cat="collective",
                args={
                    "algorithm": op["algorithm"],
                    "nbytes": op["nbytes"],
                    "rank": op["rank"],
                    "hops": len(op["msgs"]),
                },
            )
            for m in op["msgs"]:
                hop_args = {
                    "collective": op["collective"],
                    "dst": m.dest,
                    "size": m.size,
                    "tag": m.tag,
                }
                tracer.async_begin(
                    op["node"], "coll-hops", f"hop{m.msg_id}", m.msg_id,
                    m.t_post, cat="collective-hop", args=hop_args,
                )
                tracer.async_end(
                    op["node"], "coll-hops", f"hop{m.msg_id}", m.msg_id,
                    m.t_complete, cat="collective-hop",
                )

    def clear(self) -> None:
        self.ops.clear()


class NullCollectiveProfiler:
    """Disabled profiler: every method is a no-op."""

    __slots__ = ()

    enabled = False
    ops: List[Dict] = []

    def finish_op(self, *args, **kwargs) -> None:
        pass

    def hops(self) -> List[Dict]:
        return []

    def op_rows(self) -> List[Dict]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {
            "ops": [], "hops": [], "critical_path": [],
            "stragglers": [], "predicted_vs_measured": [],
        }

    def flush_to_tracer(self, tracer) -> None:
        pass

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullCollectiveProfiler>"


NULL_COLLECTIVES = NullCollectiveProfiler()


# ---------------------------------------------------------------------- #
# post-run analyzers (pure functions over hop rows)
# ---------------------------------------------------------------------- #

def _completed(hops: List[Dict]) -> List[Dict]:
    return [h for h in hops if h["t_complete"] is not None]


def critical_path(hops: List[Dict]) -> List[Dict]:
    """The serialization chain ending at the last-completing hop.

    Greedy backwards walk: from the globally last-completing hop, the
    predecessor is the latest-finishing hop that completed before it was
    posted and shares an endpoint with it (same sender, or its sender
    was the other hop's receiver) — the dependency shapes every schedule
    in :mod:`repro.api.collectives` induces.  Ties break on
    ``(t, node, msg_id)`` so the chain is deterministic.
    """
    done = _completed(hops)
    if not done:
        return []

    def latest(cands):
        return max(cands, key=lambda h: (h["t_complete"], h["node"], h["msg_id"]))

    cur = latest(done)
    chain = [cur]
    while True:
        cands = [
            h
            for h in done
            if h is not cur
            and h["t_complete"] <= cur["t_post"]
            and (h["node"] in (cur["node"], cur["dst"]) or h["dst"] == cur["node"])
        ]
        if not cands:
            break
        cur = latest(cands)
        chain.append(cur)
    chain.reverse()
    out = []
    for i, h in enumerate(chain):
        row = {
            k: h[k]
            for k in (
                "collective", "seq", "rank", "node", "dst", "size",
                "msg_id", "t_post", "t_complete",
            )
        }
        row["hop_us"] = h["t_complete"] - h["t_post"]
        row["gap_us"] = (
            h["t_post"] - chain[i - 1]["t_complete"] if i > 0 else 0.0
        )
        out.append(row)
    return out


def stragglers(hops: List[Dict]) -> List[Dict]:
    """Per-rank attribution, slowest first: who the collective waited on."""
    per_rank: Dict[int, Dict] = {}
    for h in _completed(hops):
        agg = per_rank.get(h["rank"])
        if agg is None:
            agg = per_rank[h["rank"]] = {
                "rank": h["rank"],
                "node": h["node"],
                "hops": 0,
                "bytes": 0,
                "hop_time_us": 0.0,
                "last_complete_us": 0.0,
            }
        agg["hops"] += 1
        agg["bytes"] += h["size"]
        agg["hop_time_us"] += h["t_complete"] - h["t_post"]
        agg["last_complete_us"] = max(agg["last_complete_us"], h["t_complete"])
    return sorted(
        per_rank.values(),
        key=lambda a: (-a["last_complete_us"], -a["hop_time_us"], a["rank"]),
    )


def predicted_vs_measured(hops: List[Dict]) -> List[Dict]:
    """Per-hop-size table: the cost model's hop prediction vs reality.

    ``measured_us`` averages ``t_complete − t_post`` (queueing and
    contention included — exactly what the selector's serialized-round
    cost should reflect); ``ratio`` > 1 means hops ran slower than the
    contention-blind model predicted.
    """
    by_size: Dict[int, Dict] = {}
    for h in _completed(hops):
        agg = by_size.get(h["size"])
        if agg is None:
            agg = by_size[h["size"]] = {
                "size": h["size"],
                "hops": 0,
                "measured_total": 0.0,
                "predicted_us": h["predicted_us"],
            }
        agg["hops"] += 1
        agg["measured_total"] += h["t_complete"] - h["t_post"]
    out = []
    for size in sorted(by_size):
        agg = by_size[size]
        measured = agg["measured_total"] / agg["hops"]
        predicted = agg["predicted_us"]
        out.append(
            {
                "size": size,
                "hops": agg["hops"],
                "predicted_us": predicted,
                "measured_us": measured,
                "ratio": (
                    measured / predicted
                    if predicted is not None and predicted > 0
                    else None
                ),
            }
        )
    return out


def measured_hop_table(hops: List[Dict]) -> Dict[int, float]:
    """size → mean measured hop time, the input to selector calibration."""
    return {
        row["size"]: row["measured_us"] for row in predicted_vs_measured(hops)
    }
