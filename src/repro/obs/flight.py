"""Flight recorder: a bounded ring of recent events, dumped post-mortem.

The third obs surface after tracing and metrics.  Where the tracer keeps
*everything* (up to its limit) for offline visualization, the flight
recorder keeps only the last ``capacity`` events — cheap enough to leave
armed through long chaos soaks — and *snapshots* the ring into a
structured dump when something goes wrong:

* an :class:`~repro.core.invariants.InvariantViolation` (chaos scenarios
  and :meth:`Cluster.check_drain` both trigger it),
* a :class:`~repro.core.packets.DegradedSend` (the engine's retry ladder
  ran out),
* a calibration fallback-ladder drop (trust demoted a level),
* messages still stuck at drain (``drain_stuck``).

The usual obs contract applies: every producer site guards on ``obs.on``,
recording is purely passive (tuple append into a ``deque``; no events
scheduled, no simulated state read back into planning), and dumps are
deterministic — events carry only simulated time and stable identifiers,
so the same seed ships the same dump byte-for-byte, serial or sharded.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.util.errors import ConfigurationError

#: ring capacity when not configured (events, not bytes — small on
#: purpose: the dump is evidence around the failure, not a full trace)
DEFAULT_FLIGHT_CAPACITY = 256

#: dumps retained per recorder (a soak scenario rarely needs more than
#: the first failure; keep a few in case faults cascade)
MAX_DUMPS = 8


class FlightRecorder:
    """Bounded ring buffer of recent simulator events + trigger dumps."""

    __slots__ = ("capacity", "events", "dumps", "recorded", "triggered")

    enabled = True

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.dumps: List[Dict[str, object]] = []
        self.recorded = 0
        self.triggered = 0

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self.events)}/{self.capacity} events, "
            f"{len(self.dumps)} dump(s)>"
        )

    def record(
        self, kind: str, t: float, node: str, detail: Optional[Dict] = None
    ) -> None:
        """Append one event to the ring (old events fall off the back)."""
        self.recorded += 1
        self.events.append((t, node, kind, detail))

    def trigger(
        self, reason: str, t: float, detail: Optional[Dict] = None
    ) -> Dict[str, object]:
        """Snapshot the ring into a post-mortem dump.

        The triggering condition itself is included (as ``trigger``) so
        the dump is self-contained evidence.  Retention keeps the *most
        recent* :data:`MAX_DUMPS` dumps (oldest evicted) — a cascade of
        degraded sends must not crowd out the invariant violation that
        follows them.
        """
        self.triggered += 1
        if len(self.dumps) >= MAX_DUMPS:
            self.dumps.pop(0)
        dump: Dict[str, object] = {
            "reason": reason,
            "time_us": t,
            "trigger": detail or {},
            "events_recorded": self.recorded,
            "events": [
                {"time_us": et, "node": node, "kind": kind, "detail": d or {}}
                for et, node, kind, d in self.events
            ],
        }
        self.dumps.append(dump)
        return dump

    def last_dump(self) -> Optional[Dict[str, object]]:
        return self.dumps[-1] if self.dumps else None

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state: ring summary + every retained dump."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "buffered": len(self.events),
            "triggered": self.triggered,
            "dumps": list(self.dumps),
        }

    def clear(self) -> None:
        self.events.clear()
        self.dumps.clear()
        self.recorded = 0
        self.triggered = 0


class NullFlightRecorder:
    """Disabled recorder: every method is a no-op."""

    __slots__ = ()

    enabled = False
    capacity = 0
    dumps: List[Dict[str, object]] = []

    def record(self, kind, t, node, detail=None) -> None:
        pass

    def trigger(self, reason, t, detail=None) -> None:
        return None

    def last_dump(self) -> None:
        return None

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": 0, "recorded": 0, "buffered": 0,
            "triggered": 0, "dumps": [],
        }

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullFlightRecorder>"


NULL_FLIGHT = NullFlightRecorder()
