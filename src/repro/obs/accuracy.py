"""Prediction-accuracy telemetry: predicted vs actual transfer times.

The paper's decisions (hetero-split ratios, rail discards, idle-time
prediction) are only as good as the sampled estimator behind them.  This
module pairs every completed data chunk's *predicted* transfer time with
the *actual* simulated one and accumulates per-rail / per-size-bucket
error distributions.

Two error series per chunk:

* **transfer** — pure service time: the planning estimator's
  ``transfer_time(size, mode)`` against ``t_complete − t_service_start``
  (the chunk's own pipeline, measured from the instant the send core
  actually started on it).  On a fault-free run the estimator is exact
  in simulation at sampling-grid sizes, so this error is ~0.
* **completion** — the absolute predicted completion (busy offset
  included, the Fig. 2 quantity) against ``t_complete``.  Queueing and
  cross-chunk CPU serialization show up here.

Size buckets are power-of-two aligned (the sampling grid), so bucket
membership is deterministic.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.util.units import format_size


def size_bucket(size: int) -> str:
    """Power-of-two bucket label for a chunk size (``"1M"`` holds sizes
    in ``[1M, 2M)``); sampling-grid sizes sit exactly on a bucket edge."""
    if size <= 0:
        return "0B"
    return format_size(1 << (size.bit_length() - 1))


class ErrorStats:
    """Streaming aggregate of one (predicted, actual) error series."""

    __slots__ = (
        "count", "sum_predicted", "sum_actual",
        "sum_rel_error", "sum_abs_rel_error", "max_abs_error",
    )

    def __init__(self) -> None:
        self.count = 0
        self.sum_predicted = 0.0
        self.sum_actual = 0.0
        self.sum_rel_error = 0.0
        self.sum_abs_rel_error = 0.0
        self.max_abs_error = 0.0

    def add(self, predicted: float, actual: float) -> None:
        self.count += 1
        self.sum_predicted += predicted
        self.sum_actual += actual
        err = actual - predicted
        rel = err / predicted if predicted > 0.0 else 0.0
        self.sum_rel_error += rel
        self.sum_abs_rel_error += abs(rel)
        if abs(err) > self.max_abs_error:
            self.max_abs_error = abs(err)

    @property
    def mean_rel_error(self) -> float:
        return self.sum_rel_error / self.count if self.count else 0.0

    @property
    def mean_abs_rel_error(self) -> float:
        return self.sum_abs_rel_error / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_predicted_us": (
                self.sum_predicted / self.count if self.count else 0.0
            ),
            "mean_actual_us": self.sum_actual / self.count if self.count else 0.0,
            "mean_rel_error": self.mean_rel_error,
            "mean_abs_rel_error": self.mean_abs_rel_error,
            "max_abs_error_us": self.max_abs_error,
        }


class PredictionAccuracy:
    """Cluster-wide accumulator, keyed by sending rail (qualified name)."""

    __slots__ = ("_transfer", "_completion", "_buckets", "samples")

    enabled = True

    def __init__(self) -> None:
        self._transfer: Dict[str, ErrorStats] = {}
        self._completion: Dict[str, ErrorStats] = {}
        #: (rail, bucket-label) -> transfer-time error stats
        self._buckets: Dict[str, Dict[str, ErrorStats]] = {}
        self.samples = 0

    def __repr__(self) -> str:
        return f"<PredictionAccuracy {self.samples} samples, {len(self._transfer)} rails>"

    def record(
        self,
        rail: str,
        mode: str,
        size: int,
        predicted: float,
        actual: float,
        predicted_completion: Optional[float] = None,
        actual_completion: Optional[float] = None,
    ) -> None:
        self.samples += 1
        stats = self._transfer.get(rail)
        if stats is None:
            stats = self._transfer[rail] = ErrorStats()
        stats.add(predicted, actual)
        buckets = self._buckets.setdefault(rail, {})
        label = size_bucket(size)
        bucket = buckets.get(label)
        if bucket is None:
            bucket = buckets[label] = ErrorStats()
        bucket.add(predicted, actual)
        if predicted_completion is not None and actual_completion is not None:
            comp = self._completion.get(rail)
            if comp is None:
                comp = self._completion[rail] = ErrorStats()
            comp.add(predicted_completion, actual_completion)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def rails(self):
        return sorted(self._transfer)

    def rail_stats(self, rail: str) -> Optional[ErrorStats]:
        return self._transfer.get(rail)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic (name-sorted) dump of every error series."""
        return {
            "samples": self.samples,
            "per_rail": {
                rail: {
                    "transfer": self._transfer[rail].to_dict(),
                    "completion": (
                        self._completion[rail].to_dict()
                        if rail in self._completion
                        else None
                    ),
                }
                for rail in sorted(self._transfer)
            },
            "per_bucket": {
                rail: {
                    label: stats.to_dict()
                    for label, stats in sorted(self._buckets[rail].items())
                }
                for rail in sorted(self._buckets)
            },
        }

    def report(self) -> str:
        """Fixed-width table: per-rail, then per-(rail, size-bucket)."""
        if not self.samples:
            return "prediction accuracy: no samples recorded"
        lines = [f"prediction accuracy ({self.samples} chunks):"]
        header = (
            f"  {'rail':<20} {'bucket':>7} {'n':>5} {'pred us':>12} "
            f"{'actual us':>12} {'rel err':>12} {'|rel err|':>12}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for rail in sorted(self._transfer):
            s = self._transfer[rail]
            lines.append(
                f"  {rail:<20} {'all':>7} {s.count:>5} "
                f"{s.sum_predicted / s.count:>12.4f} "
                f"{s.sum_actual / s.count:>12.4f} "
                f"{s.mean_rel_error:>12.3e} {s.mean_abs_rel_error:>12.3e}"
            )
            for label, b in sorted(self._buckets.get(rail, {}).items()):
                lines.append(
                    f"  {'':<20} {label:>7} {b.count:>5} "
                    f"{b.sum_predicted / b.count:>12.4f} "
                    f"{b.sum_actual / b.count:>12.4f} "
                    f"{b.mean_rel_error:>12.3e} {b.mean_abs_rel_error:>12.3e}"
                )
        comp_rails = sorted(self._completion)
        if comp_rails:
            lines.append("completion-time accuracy (busy offsets included):")
            for rail in comp_rails:
                c = self._completion[rail]
                lines.append(
                    f"  {rail:<20} {'all':>7} {c.count:>5} "
                    f"{c.sum_predicted / c.count:>12.4f} "
                    f"{c.sum_actual / c.count:>12.4f} "
                    f"{c.mean_rel_error:>12.3e} {c.mean_abs_rel_error:>12.3e}"
                )
        return "\n".join(lines)


class NullAccuracy:
    """The disabled accumulator: record() is a no-op."""

    __slots__ = ()

    enabled = False
    samples = 0

    def record(self, *args, **kwargs) -> None:
        pass

    def rails(self):
        return []

    def rail_stats(self, rail: str) -> None:
        return None

    def snapshot(self) -> Dict[str, object]:
        return {"samples": 0, "per_rail": {}, "per_bucket": {}}

    def report(self) -> str:
        return "prediction accuracy: telemetry disabled"

    def __repr__(self) -> str:
        return "<NullAccuracy>"


NULL_ACCURACY = NullAccuracy()
