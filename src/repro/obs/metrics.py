"""Metrics registry: counters, gauges, virtual-time histograms.

Replaces the ad-hoc per-object counter attributes as the *queryable*
metrics surface (the attributes stay for backwards compatibility; the
registry is the cluster-wide, uniformly-named view).

Determinism contract: instrument names are plain strings, snapshots are
sorted by name, and histogram bucket boundaries are **fixed at creation**
— never derived from the data — so two identical runs produce
byte-identical snapshots.  Values are simulated quantities (µs, bytes,
event counts); wall-clock time never enters the registry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: fixed log-spaced boundaries (µs) for duration histograms — chosen to
#: straddle the paper's scales: control packets (~µs), eager sends
#: (tens of µs), multi-MiB rendezvous (ms)
DEFAULT_TIME_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
)

#: fixed boundaries for small-cardinality histograms (queue depths,
#: rails per plan, retries per message)
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: fixed power-of-four boundaries (bytes) for size histograms — control
#: packets (~1B) up to multi-MiB rendezvous payloads
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = (
    64.0, 256.0, 1024.0, 4096.0, 16_384.0, 65_536.0,
    262_144.0, 1_048_576.0, 4_194_304.0, 16_777_216.0,
)

#: fixed boundaries (MB/s) for bandwidth histograms — spans a degraded
#: single rail (~tens of MB/s) to a healthy striped multirail (GB/s)
DEFAULT_BANDWIDTH_BUCKETS_MBPS: Tuple[float, ...] = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


def bucket_preset_for(name: str) -> Tuple[float, ...]:
    """Default bucket edges for a metric, picked by its name's family.

    The suffix conventions are the registry-wide naming contract:
    ``*_us`` is a duration, ``*_bytes`` a size, ``*_mbps`` a bandwidth,
    ``*_depth`` a queue depth.  Everything else falls back to the time
    buckets (the pre-fabric behaviour), so existing histograms keep
    their exact boundaries.
    """
    if name.endswith("_bytes") or name.endswith(".bytes"):
        return DEFAULT_BYTE_BUCKETS
    if name.endswith("_mbps") or name.endswith(".mbps"):
        return DEFAULT_BANDWIDTH_BUCKETS_MBPS
    if name.endswith("_depth") or name.endswith(".depth"):
        return DEFAULT_DEPTH_BUCKETS
    return DEFAULT_TIME_BUCKETS_US


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} decremented by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways (sampled state)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-boundary histogram over a simulated quantity.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; everything above the last edge lands in the overflow bucket.
    Boundaries are frozen at construction for snapshot determinism.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_US) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name} needs sorted, non-empty bounds: {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, object]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            if bounds is None:
                bounds = bucket_preset_for(name)
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic (name-sorted) dump of every instrument."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (cross-process reduce).

        Counters and histogram contents add; gauges take the incoming
        value (last-merged-wins — merge workers in a deterministic
        order).  Histograms must agree on their bucket boundaries; the
        fixed-at-creation contract makes that hold for same-build
        workers by construction.  Returns ``self`` for chaining.
        """
        for name in sorted(other._counters):
            self.counter(name).value += other._counters[name].value
        for name in sorted(other._gauges):
            self.gauge(name).value = other._gauges[name].value
        for name in sorted(other._histograms):
            theirs = other._histograms[name]
            mine = self.histogram(name, theirs.bounds)
            if mine.bounds != theirs.bounds:
                raise ConfigurationError(
                    f"histogram {name}: bucket boundaries differ "
                    f"({mine.bounds} vs {theirs.bounds})"
                )
            for i, c in enumerate(theirs.counts):
                mine.counts[i] += c
            mine.count += theirs.count
            mine.total += theirs.total
            for attr in ("min", "max"):
                val = getattr(theirs, attr)
                if val is None:
                    continue
                cur = getattr(mine, attr)
                pick = min if attr == "min" else max
                setattr(mine, attr, val if cur is None else pick(cur, val))
        return self


class _NullInstrument:
    """Stand-in counter/gauge/histogram whose mutators are no-ops."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: hands out the shared no-op instrument."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "<NullMetrics>"


NULL_METRICS = NullMetrics()


def merge_snapshots(
    snapshots: Iterable[Dict[str, Dict[str, object]]]
) -> Dict[str, Dict[str, object]]:
    """Reduce :meth:`MetricsRegistry.snapshot` dicts from several workers
    into one (the pickled-artifact counterpart of :meth:`~MetricsRegistry.merge`).

    Same semantics: counters and histogram contents add, gauges take the
    last value in iteration order.  The reduce is associative and the
    output name-sorted, so a serial run and any sharded fan-out of the
    same work merge byte-identically.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value
        for name, h in snap.get("histograms", {}).items():
            cur = histograms.get(name)
            if cur is None:
                histograms[name] = {
                    "buckets": dict(h["buckets"]),
                    "count": h["count"],
                    "total": h["total"],
                    "min": h["min"],
                    "max": h["max"],
                }
                continue
            if set(cur["buckets"]) != set(h["buckets"]):
                raise ConfigurationError(
                    f"histogram {name}: bucket boundaries differ across "
                    "snapshots"
                )
            for edge, c in h["buckets"].items():
                cur["buckets"][edge] += c
            cur["count"] += h["count"]
            cur["total"] += h["total"]
            for attr, pick in (("min", min), ("max", max)):
                val = h[attr]
                if val is None:
                    continue
                cur[attr] = val if cur[attr] is None else pick(cur[attr], val)
    return {
        "counters": {n: counters[n] for n in sorted(counters)},
        "gauges": {n: gauges[n] for n in sorted(gauges)},
        "histograms": {
            n: {
                "buckets": {
                    e: histograms[n]["buckets"][e]
                    for e in sorted(histograms[n]["buckets"])
                },
                "count": histograms[n]["count"],
                "total": histograms[n]["total"],
                "min": histograms[n]["min"],
                "max": histograms[n]["max"],
            }
            for n in sorted(histograms)
        },
    }
