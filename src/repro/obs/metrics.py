"""Metrics registry: counters, gauges, virtual-time histograms.

Replaces the ad-hoc per-object counter attributes as the *queryable*
metrics surface (the attributes stay for backwards compatibility; the
registry is the cluster-wide, uniformly-named view).

Determinism contract: instrument names are plain strings, snapshots are
sorted by name, and histogram bucket boundaries are **fixed at creation**
— never derived from the data — so two identical runs produce
byte-identical snapshots.  Values are simulated quantities (µs, bytes,
event counts); wall-clock time never enters the registry.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: fixed log-spaced boundaries (µs) for duration histograms — chosen to
#: straddle the paper's scales: control packets (~µs), eager sends
#: (tens of µs), multi-MiB rendezvous (ms)
DEFAULT_TIME_BUCKETS_US: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
)

#: fixed boundaries for small-cardinality histograms (queue depths,
#: rails per plan, retries per message)
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} decremented by {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways (sampled state)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-boundary histogram over a simulated quantity.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; everything above the last edge lands in the overflow bucket.
    Boundaries are frozen at construction for snapshot determinism.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_US) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name} needs sorted, non-empty bounds: {bounds!r}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> Dict[str, object]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "buckets": buckets,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create home for every instrument, keyed by name."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms>"
        )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_US
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic (name-sorted) dump of every instrument."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }


class _NullInstrument:
    """Stand-in counter/gauge/histogram whose mutators are no-ops."""

    __slots__ = ()

    name = "null"
    value = 0
    count = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: hands out the shared no-op instrument."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self) -> str:
        return "<NullMetrics>"


NULL_METRICS = NullMetrics()
