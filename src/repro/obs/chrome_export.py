"""Chrome ``trace_event`` JSON export of a :class:`~repro.obs.tracer.Tracer`.

The output loads in Perfetto (https://ui.perfetto.dev) and legacy
``chrome://tracing``: one *process* per simulated node, one *thread* per
lane (NIC, core, message stream), timestamps in virtual µs.

Determinism: node→pid and lane→tid maps are assigned in sorted order,
events are sorted by ``(ts, seq)`` (``seq`` is the tracer's record
order, so simultaneous events keep a stable order), and the JSON is
dumped with sorted keys — two identical runs serialize byte-identically.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Dict, List, Union

PathOrBuffer = Union[str, Path, io.TextIOBase]


def chrome_trace(tracer) -> Dict[str, Any]:
    """Render the tracer's events as a Chrome JSON object-format trace."""
    nodes = sorted({ev["pid"] for ev in tracer.events})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}
    lanes = sorted({(ev["pid"], ev["tid"]) for ev in tracer.events})
    tid_of: Dict[tuple, int] = {}
    per_node_count: Dict[str, int] = {}
    for node, lane in lanes:
        per_node_count[node] = per_node_count.get(node, 0) + 1
        tid_of[(node, lane)] = per_node_count[node]

    events: List[Dict[str, Any]] = []
    for node in nodes:
        events.append(
            {
                "ph": "M", "name": "process_name", "cat": "__metadata",
                "pid": pid_of[node], "tid": 0, "ts": 0,
                "args": {"name": node},
            }
        )
    for node, lane in lanes:
        events.append(
            {
                "ph": "M", "name": "thread_name", "cat": "__metadata",
                "pid": pid_of[node], "tid": tid_of[(node, lane)], "ts": 0,
                "args": {"name": lane},
            }
        )
    for ev in sorted(tracer.events, key=lambda e: (e["ts"], e["seq"])):
        out: Dict[str, Any] = {
            "ph": ev["ph"], "name": ev["name"], "cat": ev["cat"],
            "pid": pid_of[ev["pid"]], "tid": tid_of[(ev["pid"], ev["tid"])],
            "ts": ev["ts"],
        }
        for key in ("dur", "id", "s", "args"):
            if key in ev:
                out[key] = ev[key]
        events.append(out)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual-us",
            "dropped_events": tracer.dropped,
        },
    }


def dumps_chrome_trace(tracer) -> str:
    """The trace as a canonical JSON string (sorted keys, compact)."""
    return json.dumps(chrome_trace(tracer), sort_keys=True, separators=(",", ":"))


def export_chrome_trace(tracer, target: PathOrBuffer) -> int:
    """Write the Chrome JSON trace; returns the number of events written
    (metadata included)."""
    trace = chrome_trace(tracer)
    text = json.dumps(trace, sort_keys=True, separators=(",", ":"))
    if isinstance(target, (str, Path)):
        Path(target).write_text(text, encoding="utf-8")
    else:
        target.write(text)
    return len(trace["traceEvents"])


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Structural checks on an exported trace; returns problem strings
    (empty = valid).

    Checked: non-metadata timestamps are monotonically non-decreasing,
    ``X`` events carry a non-negative ``dur``, and every async ``b`` has
    a matching ``e`` (same ``cat``/``id``/``name``) and vice versa.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    last_ts = None
    open_spans: Dict[tuple, int] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} missing {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i} has non-numeric ts {ts!r}")
            continue
        if ts < 0:
            problems.append(f"event {i} has negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i} ts {ts} < previous {last_ts} (not sorted)")
        last_ts = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"X event {i} ({ev.get('name')}) has bad dur {dur!r}")
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if ev.get("id") is None:
                problems.append(f"async event {i} ({ev.get('name')}) has no id")
            if ph == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            else:
                if open_spans.get(key, 0) <= 0:
                    problems.append(
                        f"async end {i} ({ev.get('name')} id={ev.get('id')}) "
                        "without a begin"
                    )
                else:
                    open_spans[key] -= 1
        elif ph not in ("i", "C"):
            problems.append(f"event {i} has unexpected phase {ph!r}")
    for (cat, span_id, name), depth in sorted(
        open_spans.items(), key=lambda kv: str(kv[0])
    ):
        if depth > 0:
            problems.append(
                f"async begin {name} (cat={cat} id={span_id}) never ended"
            )
    return problems
