"""Observability: structured tracing, metrics, prediction accuracy.

One :class:`Observability` instance is shared by every engine, NIC,
scheduler and fault injector of a cluster (``ClusterBuilder
.observability()`` wires it; the config file's ``observability:``
section does the same declaratively).  It bundles the three telemetry
surfaces:

* :attr:`Observability.tracer` — span-based structured tracer
  (:mod:`repro.obs.tracer`), exported as Chrome ``trace_event`` JSON by
  :mod:`repro.obs.chrome_export`;
* :attr:`Observability.metrics` — counters / gauges / fixed-bucket
  histograms (:mod:`repro.obs.metrics`);
* :attr:`Observability.accuracy` — predicted-vs-actual transfer-time
  telemetry (:mod:`repro.obs.accuracy`).

Overhead contract: when observability is off (the default), every hook
site guards on ``obs.on`` — one attribute read — and the shared
:data:`NULL_OBS` singleton's components are no-ops.  The tracer and
accuracy recorders are **purely passive**: they read simulated state but
never schedule events, occupy resources or alter control flow, so
enabling them moves *no simulated timestamp* (the determinism tests
assert this bit-for-bit).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.accuracy import (
    NULL_ACCURACY,
    NullAccuracy,
    PredictionAccuracy,
    size_bucket,
)
from repro.obs.chrome_export import (
    chrome_trace,
    dumps_chrome_trace,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.collective import (
    NULL_COLLECTIVES,
    CollectiveProfiler,
    NullCollectiveProfiler,
    critical_path,
    measured_hop_table,
    predicted_vs_measured,
    stragglers,
)
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    DEFAULT_BANDWIDTH_BUCKETS_MBPS,
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_TIME_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    bucket_preset_for,
    merge_snapshots,
)
from repro.obs.tracer import DEFAULT_TRACE_LIMIT, NULL_TRACER, NullTracer, Tracer


class Observability:
    """The bundle handed to every instrumented layer.

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` builds the null bundle (also available
        as the shared :data:`NULL_OBS`).
    trace / metrics / accuracy:
        Disable individual surfaces while keeping the others.
    trace_limit:
        Cap on recorded trace events before deterministic dropping
        (``None`` = unbounded).
    flight / flight_capacity:
        The crash-dump flight recorder (:mod:`repro.obs.flight`): a
        bounded ring of recent events dumped on invariant violations,
        degraded sends and calibration ladder drops.
    collectives:
        The collective critical-path profiler
        (:mod:`repro.obs.collective`).
    """

    __slots__ = ("on", "tracer", "metrics", "accuracy", "flight", "collectives")

    def __init__(
        self,
        enabled: bool = True,
        trace: bool = True,
        metrics: bool = True,
        accuracy: bool = True,
        trace_limit: Optional[int] = DEFAULT_TRACE_LIMIT,
        flight: bool = True,
        flight_capacity: Optional[int] = None,
        collectives: bool = True,
    ) -> None:
        self.on = bool(enabled)
        self.tracer = Tracer(trace_limit) if self.on and trace else NULL_TRACER
        self.metrics = MetricsRegistry() if self.on and metrics else NULL_METRICS
        self.accuracy = (
            PredictionAccuracy() if self.on and accuracy else NULL_ACCURACY
        )
        self.flight = (
            FlightRecorder(flight_capacity or DEFAULT_FLIGHT_CAPACITY)
            if self.on and flight
            else NULL_FLIGHT
        )
        self.collectives = (
            CollectiveProfiler() if self.on and collectives else NULL_COLLECTIVES
        )

    def __repr__(self) -> str:
        if not self.on:
            return "<Observability off>"
        return (
            f"<Observability trace={self.tracer.enabled} "
            f"events={len(self.tracer.events)} accuracy={self.accuracy.enabled}>"
        )

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def sample_cluster(self, cluster) -> None:
        """Refresh sampled-state gauges from a built cluster.

        Live counters are incremented at the event sites; gauges capture
        point-in-time state (utilization, queue depths, cache hit rates)
        and are only meaningful after this call.
        """
        if not self.on:
            return
        m = self.metrics
        m.gauge("sim.now_us").set(cluster.sim.now)
        m.gauge("sim.events_processed").set(cluster.sim.events_processed)
        for name in sorted(cluster.machines):
            machine = cluster.machines[name]
            for nic in machine.nics:
                q = nic.qualified_name
                m.gauge(f"nic.{q}.utilization").set(nic.utilization())
                m.gauge(f"nic.{q}.queue_depth").set(nic._tx.queued)
                m.gauge(f"nic.{q}.busy_offset_us").set(
                    nic.busy_until - nic.sim.now
                )
                m.gauge(f"nic.{q}.degraded").set(1.0 if nic.is_degraded else 0.0)
                m.gauge(f"nic.{q}.up").set(1.0 if nic.is_up else 0.0)
            for core in machine.cores:
                m.gauge(f"core.{name}.{core.core_id}.busy_us").set(core.busy_time)
        for name in sorted(cluster.engines):
            engine = cluster.engines[name]
            m.gauge(f"scheduler.{name}.outlist_depth").set(len(engine.scheduler))
            if engine.predictor is not None:
                m.gauge(f"predictor.{name}.plan_cache_hits").set(
                    engine.predictor.plan_cache_hits
                )
                m.gauge(f"predictor.{name}.plan_cache_misses").set(
                    engine.predictor.plan_cache_misses
                )
        calib = getattr(cluster, "calibration", None)
        if calib is not None and calib.on:
            # Drift-defense gauges only exist when calibration is armed,
            # so healthy snapshots stay byte-identical with it off.
            for rail in calib.detector.rails():
                m.gauge(f"calibration.{rail}.confidence").set(
                    calib.confidence(rail)
                )

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic dump of every surface (schema in
        ``docs/observability.md``)."""
        return {
            "enabled": self.on,
            "metrics": self.metrics.snapshot(),
            "accuracy": self.accuracy.snapshot(),
            "trace": {
                "events": len(self.tracer.events),
                "dropped": self.tracer.dropped,
            },
            "flight": self.flight.snapshot(),
            "collectives": self.collectives.snapshot(),
        }


#: the shared disabled bundle — the default for every engine/NIC/injector
NULL_OBS = Observability.disabled()

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_TRACE_LIMIT",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS_US",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_BANDWIDTH_BUCKETS_MBPS",
    "bucket_preset_for",
    "merge_snapshots",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "DEFAULT_FLIGHT_CAPACITY",
    "CollectiveProfiler",
    "NullCollectiveProfiler",
    "NULL_COLLECTIVES",
    "critical_path",
    "stragglers",
    "predicted_vs_measured",
    "measured_hop_table",
    "PredictionAccuracy",
    "NullAccuracy",
    "NULL_ACCURACY",
    "size_bucket",
    "chrome_trace",
    "dumps_chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
]
