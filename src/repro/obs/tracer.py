"""Span-based structured tracer for the simulation's virtual time.

The tracer records *facts about simulated instants* — never wall-clock
time — so two runs of the same cluster produce byte-identical event
lists.  Events follow the Chrome ``trace_event`` vocabulary:

* ``complete`` (phase ``X``) — a closed interval on one lane (a NIC
  transmit, a receive-processing slice);
* ``instant`` (phase ``i``) — a point decision (a plan, a fault, an
  offload signal);
* ``async_begin``/``async_end`` (phases ``b``/``e``) — an id-matched
  span that may overlap others on the same lane (message lifecycles,
  transfer lifecycles);
* ``counter`` (phase ``C``) — a sampled value series.

Hot call sites guard on :attr:`Tracer.enabled` (a plain attribute read)
and the disabled path is the :class:`NullTracer` singleton whose methods
are no-ops — near-zero overhead when tracing is off.

``pid``/``tid`` are recorded as the *node name* and a human-readable
*lane* string; :mod:`repro.obs.chrome_export` maps them to the integers
the Chrome JSON format wants and emits the matching metadata events.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: default cap on recorded events before the tracer starts dropping
#: (deterministic: based purely on the event count, never on memory)
DEFAULT_TRACE_LIMIT = 1_000_000


class Tracer:
    """Recording tracer: appends event dicts to an in-memory list."""

    __slots__ = ("events", "limit", "dropped", "_seq")

    #: guarded by every call site; class attribute so the check is cheap
    enabled = True

    def __init__(self, limit: Optional[int] = DEFAULT_TRACE_LIMIT) -> None:
        self.events: List[Dict[str, Any]] = []
        self.limit = limit
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.events)} events, {self.dropped} dropped>"

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------ #
    # recording primitives
    # ------------------------------------------------------------------ #

    def _push(self, event: Dict[str, Any]) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        event["seq"] = self._seq
        self._seq += 1
        self.events.append(event)

    def complete(
        self,
        node: str,
        lane: str,
        name: str,
        ts: float,
        dur: float,
        cat: str = "span",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A closed ``[ts, ts+dur]`` interval on one lane (phase ``X``)."""
        ev: Dict[str, Any] = {
            "ph": "X", "name": name, "cat": cat,
            "pid": node, "tid": lane, "ts": ts, "dur": dur,
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def instant(
        self,
        node: str,
        lane: str,
        name: str,
        ts: float,
        cat: str = "event",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A point event on one lane (phase ``i``, thread scope)."""
        ev: Dict[str, Any] = {
            "ph": "i", "name": name, "cat": cat,
            "pid": node, "tid": lane, "ts": ts, "s": "t",
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def async_begin(
        self,
        node: str,
        lane: str,
        name: str,
        span_id: int,
        ts: float,
        cat: str = "message",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Open an id-matched span (phase ``b``); close with
        :meth:`async_end` using the same ``(cat, span_id, name)``."""
        ev: Dict[str, Any] = {
            "ph": "b", "name": name, "cat": cat,
            "pid": node, "tid": lane, "ts": ts, "id": span_id,
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def async_end(
        self,
        node: str,
        lane: str,
        name: str,
        span_id: int,
        ts: float,
        cat: str = "message",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        ev: Dict[str, Any] = {
            "ph": "e", "name": name, "cat": cat,
            "pid": node, "tid": lane, "ts": ts, "id": span_id,
        }
        if args:
            ev["args"] = args
        self._push(ev)

    def counter(
        self,
        node: str,
        name: str,
        ts: float,
        values: Dict[str, float],
        cat: str = "metric",
    ) -> None:
        """A sampled value series point (phase ``C``)."""
        self._push(
            {
                "ph": "C", "name": name, "cat": cat,
                "pid": node, "tid": "counters", "ts": ts,
                "args": dict(values),
            }
        )


class NullTracer:
    """The disabled tracer: every method is a no-op.

    Shared as the :data:`NULL_TRACER` singleton; stateless, so one
    instance serves every engine of every cluster.
    """

    __slots__ = ()

    enabled = False
    events: List[Dict[str, Any]] = []
    dropped = 0

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullTracer>"

    def clear(self) -> None:
        pass

    def complete(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def async_begin(self, *args, **kwargs) -> None:
        pass

    def async_end(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass


NULL_TRACER = NullTracer()
