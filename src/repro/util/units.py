"""Size and rate units used throughout the library.

Conventions
-----------
* **Sizes** are plain ``int`` bytes.  Helper constants :data:`KiB`,
  :data:`MiB`, :data:`GiB` and the parser :func:`parse_size` accept the
  ``"4K"`` / ``"8M"`` notation the paper's figures use on their axes.
* **Time** is ``float`` microseconds (µs) of *virtual* time — the paper
  reports latencies in µs and bandwidth curves against µs-scale transfers.
* **Rates** are bytes per microsecond (B/µs).  ``1 B/µs`` is about
  0.9537 MB/s when "MB" means MiB, which is what the paper's bandwidth
  axes use (powers-of-two sizes, MB/s labels).
"""

from __future__ import annotations

import math
import re
from typing import List, Sequence

KiB: int = 1024
MiB: int = 1024 * 1024
GiB: int = 1024 * 1024 * 1024

_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": KiB,
    "KB": KiB,
    "KIB": KiB,
    "M": MiB,
    "MB": MiB,
    "MIB": MiB,
    "G": GiB,
    "GB": GiB,
    "GIB": GiB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]*)\s*$")


def parse_size(text: "str | int") -> int:
    """Parse a human-readable size (``"4K"``, ``"8M"``, ``"512"``) to bytes.

    Integers pass through unchanged.  Suffixes are binary (K = 1024) to
    match the paper's axes (32K, 64K, ..., 8M).

    >>> parse_size("4K")
    4096
    >>> parse_size(17)
    17
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"negative size: {text}")
        return text
    m = _SIZE_RE.match(str(text))
    if not m:
        raise ValueError(f"unparsable size: {text!r}")
    value, suffix = m.groups()
    mult = _SUFFIXES.get(suffix.upper())
    if mult is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    out = float(value) * mult
    if not out.is_integer():
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(out)


_TIME_SUFFIXES = {
    "": 1.0,  # bare numbers are already µs
    "US": 1.0,
    "µS": 1.0,
    "MS": 1_000.0,
    "S": 1_000_000.0,
}

_TIME_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-zµ]*)\s*$")


def parse_time(text: "str | float | int") -> float:
    """Parse a human-readable duration to µs (``"500us"``, ``"2ms"``, 1.5).

    Bare numbers (int/float or digit-only strings) are taken as µs —
    the library's native time unit — so existing float call sites keep
    working through the same choke point.

    >>> parse_time("2ms")
    2000.0
    >>> parse_time(37.5)
    37.5
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
        if value < 0:
            raise ValueError(f"negative duration: {text}")
        return value
    m = _TIME_RE.match(str(text))
    if not m:
        raise ValueError(f"unparsable duration: {text!r}")
    value, suffix = m.groups()
    mult = _TIME_SUFFIXES.get(suffix.upper())
    if mult is None:
        raise ValueError(f"unknown time suffix {suffix!r} in {text!r}")
    return float(value) * mult


def format_size(nbytes: int) -> str:
    """Format a byte count the way the paper labels its axes (4K, 8M...).

    Exact powers only get a bare suffix; everything else keeps one decimal.

    >>> format_size(4096)
    '4K'
    >>> format_size(8 * 1024 * 1024)
    '8M'
    """
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    for mult, suffix in ((GiB, "G"), (MiB, "M"), (KiB, "K")):
        if nbytes >= mult:
            q = nbytes / mult
            if q == int(q):
                return f"{int(q)}{suffix}"
            return f"{q:.1f}{suffix}"
    return str(nbytes)


def format_time_us(us: float) -> str:
    """Format a µs duration with a sensible unit (µs / ms / s)."""
    if us < 0:
        raise ValueError(f"negative duration: {us}")
    if us < 1_000:
        return f"{us:.2f}us"
    if us < 1_000_000:
        return f"{us / 1_000:.3f}ms"
    return f"{us / 1_000_000:.4f}s"


def bytes_per_us_to_mbps(rate: float) -> float:
    """Convert B/µs to MB/s (MiB per second, as in the paper's figures)."""
    return rate * 1e6 / MiB


def mbps_to_bytes_per_us(mbps: float) -> float:
    """Convert MB/s (MiB per second) to B/µs."""
    return mbps * MiB / 1e6


def pow2_sizes(lo: "str | int", hi: "str | int") -> List[int]:
    """All powers of two in ``[lo, hi]`` inclusive; the sampling grid.

    ``lo`` is rounded up and ``hi`` rounded down to the nearest power of
    two, mirroring the paper's "various sizes (e.g. powers of 2)" grid.

    >>> pow2_sizes(4, 32)
    [4, 8, 16, 32]
    """
    lo_b = max(1, parse_size(lo))
    hi_b = parse_size(hi)
    if hi_b < lo_b:
        raise ValueError(f"empty size range [{lo}, {hi}]")
    k = math.ceil(math.log2(lo_b))
    out: List[int] = []
    while (1 << k) <= hi_b:
        out.append(1 << k)
        k += 1
    return out


#: Default sampling grid: 4 B .. 16 MiB in powers of two (covers both the
#: eager Fig. 9 range and the rendezvous Fig. 8 range with headroom).
POW2_SIZES: Sequence[int] = tuple(pow2_sizes(4, 16 * MiB))
