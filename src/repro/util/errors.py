"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the engine may raise with a single ``except`` clause while
still discriminating the failure domain via the subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was built or wired with inconsistent parameters.

    Examples: a NIC attached to two wires, a strategy given zero rails, a
    negative bandwidth in a network profile.
    """


class ProtocolError(ReproError):
    """A communication protocol state machine was driven out of order.

    Examples: completing a rendezvous that was never initiated, receiving a
    chunk for an unknown message id, unpacking more bytes than were packed.
    """


class SchedulingError(ReproError):
    """The optimizer/scheduler or the tasklet layer hit an invalid state.

    Examples: feeding a busy NIC, scheduling a tasklet on an offline core,
    re-entering a strategy that is not reentrant.
    """


class SamplingError(ReproError):
    """The sampling subsystem produced or was fed unusable data.

    Examples: loading a profile file with non-monotonic sizes, querying an
    estimator built from fewer than two sample points.
    """


class SimulationError(ReproError):
    """The discrete-event kernel was misused.

    Examples: scheduling an event in the past, running a simulator whose
    clock was corrupted, waiting on a waitable from a foreign simulator.
    """
