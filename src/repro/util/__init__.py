"""Utility helpers shared across the repro packages.

This subpackage intentionally has no dependency on the simulator or the
communication engine so that every other subpackage may import it freely.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    ProtocolError,
    SchedulingError,
    SamplingError,
)
from repro.util.units import (
    KiB,
    MiB,
    GiB,
    parse_size,
    parse_time,
    format_size,
    format_time_us,
    bytes_per_us_to_mbps,
    mbps_to_bytes_per_us,
    POW2_SIZES,
    pow2_sizes,
)
from repro.util.stats import (
    RunningStats,
    percentile,
    geometric_mean,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "SchedulingError",
    "SamplingError",
    "KiB",
    "MiB",
    "GiB",
    "parse_size",
    "parse_time",
    "format_size",
    "format_time_us",
    "bytes_per_us_to_mbps",
    "mbps_to_bytes_per_us",
    "POW2_SIZES",
    "pow2_sizes",
    "RunningStats",
    "percentile",
    "geometric_mean",
]
