"""Small statistics helpers used by the sampler and the bench harness.

Kept dependency-light: only :mod:`math`; numpy is reserved for the hot
paths in the simulator and bench sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator.

    Used by the sampler to aggregate repeated ping-pong measurements for a
    single message size without storing every observation.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _values: List[float] = field(default_factory=list, repr=False)

    def add(self, x: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        self._values.append(x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def median(self) -> float:
        """Median of all folded observations (the sampler's estimator of
        choice: robust against the occasional simulated-congestion outlier).
        """
        if not self._values:
            raise ValueError("median of empty RunningStats")
        return percentile(self._values, 50.0)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    s = sorted(values)
    if len(s) == 1:
        return s[0]
    pos = (len(s) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return s[lo]
    frac = pos - lo
    # s[lo] + delta*frac (not the two-sided lerp) stays exactly within
    # [s[lo], s[hi]] even under floating-point rounding.
    return s[lo] + (s[hi] - s[lo]) * frac


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; used to summarize speedup series in EXPERIMENTS.md."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
