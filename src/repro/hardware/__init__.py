"""Host hardware models: cores, CPU topology, nodes.

The paper's multicore effect is entirely about *CPU occupancy*: PIO copies
monopolize the issuing core, so on one core they serialize (Fig. 4a) while
spread over idle cores they overlap (Fig. 4c).  A :class:`Core` is thus a
capacity-1 FIFO resource in virtual time with occupancy accounting, and a
:class:`Machine` is a set of cores arranged in a (possibly hierarchical)
:class:`CpuTopology` — two dual-core sockets for the paper's testbed.
"""

from repro.hardware.core import Core, CoreWork
from repro.hardware.topology import CpuTopology
from repro.hardware.machine import Machine

__all__ = ["Core", "CoreWork", "CpuTopology", "Machine"]
