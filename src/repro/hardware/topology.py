"""Hierarchical CPU topology (sockets × cores), signalling costs, and
fabric-scale network descriptions.

Marcel "was carefully designed to ... efficiently exploit hierarchical
architectures" (paper §III-A).  For the strategy, the observable part of
that hierarchy is the *cost of poking another core*: raising a tasklet on
a sibling core (same socket) is cheaper than crossing the interconnect.
The paper measures the end-to-end offload cost at 3 µs (6 µs when the
target thread must be preempted by a signal, §III-D); those are exposed
here as the machine-wide defaults and modulated by distance.

The second half of this module is the :class:`Fabric` description layer:
a declarative picture of an N-node multirail testbed — named node set
plus one :class:`FabricRail` per rail technology, each either a full mesh
of back-to-back wires (the paper's two-node testbed generalized), one
flat shared switch, or a two-stage fat tree with per-uplink contention
(the T2K-style clusters of the paper's introduction).  A ``Fabric`` holds
no simulator state; :meth:`repro.api.cluster.ClusterBuilder.fabric`
materializes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: Paper §III-D: communication between the strategy and a remote core.
DEFAULT_SIGNAL_COST_US: float = 3.0
#: Paper §III-D: extra cost when a running thread must be preempted.
DEFAULT_PREEMPT_COST_US: float = 6.0


@dataclass(frozen=True)
class CpuTopology:
    """Socket/core layout plus inter-core signalling cost model.

    The default layout is the paper's testbed: a *dual dual-core Opteron*
    node (2 sockets × 2 cores).

    ``signal_cost_us`` is the cost of notifying an **idle** remote core
    that a send request is registered (tasklet wake-up, §III-D: 3 µs);
    ``preempt_cost_us`` is the cost when the remote core runs a computing
    thread that must be preempted by a signal (6 µs).
    ``cross_socket_factor`` scales both when the target core sits on a
    different socket (1.0 = flat cost, the paper's reported numbers).
    """

    sockets: int = 2
    cores_per_socket: int = 2
    signal_cost_us: float = DEFAULT_SIGNAL_COST_US
    preempt_cost_us: float = DEFAULT_PREEMPT_COST_US
    cross_socket_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError(
                f"topology needs >=1 socket and core, got "
                f"{self.sockets}x{self.cores_per_socket}"
            )
        if self.signal_cost_us < 0 or self.preempt_cost_us < 0:
            raise ConfigurationError("signalling costs must be >= 0")
        if self.cross_socket_factor < 1.0:
            raise ConfigurationError(
                "cross_socket_factor < 1 would make remote sockets cheaper "
                "than local ones"
            )

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core_id: int) -> int:
        """Socket index of a global core id (cores numbered socket-major)."""
        if not 0 <= core_id < self.total_cores:
            raise ConfigurationError(
                f"core id {core_id} outside 0..{self.total_cores - 1}"
            )
        return core_id // self.cores_per_socket

    def core_ids(self) -> Iterator[int]:
        return iter(range(self.total_cores))

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def signal_cost(self, src: int, dst: int, preempt: bool = False) -> float:
        """Cost (µs) for core ``src`` to hand work to core ``dst``.

        ``preempt=True`` models the case where ``dst`` runs a computing
        thread that must be interrupted by a signal.  Signalling oneself is
        free — the strategy simply keeps the chunk on the local core.
        """
        if src == dst:
            return 0.0
        base = self.preempt_cost_us if preempt else self.signal_cost_us
        if not self.same_socket(src, dst):
            base *= self.cross_socket_factor
        return base

    @classmethod
    def paper_testbed(cls) -> "CpuTopology":
        """The evaluation platform: dual dual-core Opteron (§IV)."""
        return cls(sockets=2, cores_per_socket=2)

    @classmethod
    def flat(cls, cores: int) -> "CpuTopology":
        """A single-socket machine with ``cores`` cores (for ablations)."""
        return cls(sockets=1, cores_per_socket=cores)


# --------------------------------------------------------------------- #
# fabric-scale descriptions (N nodes, per-rail switch graphs)
# --------------------------------------------------------------------- #

#: fabric rail kinds understood by the builder
RAIL_KINDS = ("wire", "switch", "fat_tree")


@dataclass(frozen=True)
class FabricRail:
    """One rail technology of a fabric and how its links are arranged.

    ``kind``:

    * ``"wire"`` — dedicated back-to-back links between every node pair
      (the paper's testbed shape; NIC count grows as n-1 per node);
    * ``"switch"`` — one flat shared switch, one NIC per node, output
      ports contended (:class:`repro.networks.switch.Switch`);
    * ``"fat_tree"`` — two-stage fat tree: per-pod edge switching plus
      ``spines`` contended spine uplinks
      (:class:`repro.networks.switch.FatTreeSwitch`).

    ``pod_size`` (fat tree only) is nodes per edge pod; 0 picks a
    near-square layout at build time.  ``adaptive`` (fat tree only)
    enables health-aware spine selection: flows hashed onto a
    down/degraded spine deterministically re-route to a healthy one
    (bit-identical to the static ECMP hash while no fabric fault has
    fired).  ``overrides`` are driver profile overrides, as in
    :meth:`ClusterBuilder.add_rail`.
    """

    technology: str
    kind: str = "switch"
    switch_latency: float = 0.3
    pod_size: int = 0
    spines: int = 2
    adaptive: bool = True
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RAIL_KINDS:
            raise ConfigurationError(
                f"unknown fabric rail kind {self.kind!r}; known: {RAIL_KINDS}"
            )
        if self.switch_latency < 0:
            raise ConfigurationError(
                f"negative switch latency: {self.switch_latency}"
            )
        if self.pod_size < 0:
            raise ConfigurationError(f"negative pod_size: {self.pod_size}")
        if self.spines < 1:
            raise ConfigurationError(f"fat tree needs >= 1 spine: {self.spines}")
        # freeze the overrides mapping so the dataclass stays hashable-ish
        object.__setattr__(self, "overrides", dict(self.overrides))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"driver": self.technology, "kind": self.kind}
        if self.switch_latency != 0.3:
            out["switch_latency"] = self.switch_latency
        if self.kind == "fat_tree":
            if self.pod_size:
                out["pod_size"] = self.pod_size
            out["spines"] = self.spines
            if not self.adaptive:
                out["adaptive"] = False
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        return out

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FabricRail":
        known = {
            "driver", "technology", "kind", "switch_latency", "pod_size",
            "spines", "adaptive", "overrides",
        }
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fabric rail keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        technology = spec.get("driver", spec.get("technology"))
        if not technology:
            raise ConfigurationError(f"fabric rail needs a 'driver': {spec!r}")
        return cls(
            technology=str(technology),
            kind=str(spec.get("kind", "switch")),
            switch_latency=float(spec.get("switch_latency", 0.3)),
            pod_size=int(spec.get("pod_size", 0)),
            spines=int(spec.get("spines", 2)),
            adaptive=bool(spec.get("adaptive", True)),
            overrides=dict(spec.get("overrides", {})),
        )


@dataclass(frozen=True)
class Fabric:
    """A declarative N-node multirail testbed: node names + rails.

    Purely descriptive — building the simulator objects is
    :meth:`ClusterBuilder.fabric`'s job.  The default construction is the
    paper's two-node testbed (:meth:`paper_testbed`), so existing
    configs and tests keep working unchanged.
    """

    nodes: Tuple[str, ...]
    rails: Tuple[FabricRail, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ConfigurationError(
                f"a fabric needs >= 2 nodes, got {len(self.nodes)}"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise ConfigurationError(f"duplicate fabric node names: {self.nodes}")
        if not self.rails:
            raise ConfigurationError("a fabric needs >= 1 rail")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "rails", tuple(self.rails))

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def technologies(self) -> Tuple[str, ...]:
        """Rail technologies in declaration order, deduplicated."""
        seen: List[str] = []
        for rail in self.rails:
            if rail.technology not in seen:
                seen.append(rail.technology)
        return tuple(seen)

    def pod_size_of(self, rail: FabricRail) -> int:
        """The effective pod size of a fat-tree rail (0 = near-square)."""
        if rail.pod_size:
            return min(rail.pod_size, self.size)
        pods = 2
        while pods * pods < self.size:
            pods += 1
        return max(1, (self.size + pods - 1) // pods)

    def with_node_names(self, names: Sequence[str]) -> "Fabric":
        """The same rail layout over a renamed node set (e.g. MPI ranks)."""
        if len(names) != len(self.nodes):
            raise ConfigurationError(
                f"fabric has {len(self.nodes)} nodes, got {len(names)} names"
            )
        return Fabric(nodes=tuple(names), rails=self.rails)

    # ------------------------------------------------------------------ #
    # canned shapes
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_testbed(
        cls, rails: Sequence[str] = ("myri10g", "quadrics")
    ) -> "Fabric":
        """Two nodes wired back-to-back — the §IV platform."""
        return cls(
            nodes=("node0", "node1"),
            rails=tuple(FabricRail(technology=r, kind="wire") for r in rails),
        )

    @classmethod
    def full_mesh(
        cls,
        n: int,
        rails: Sequence[str] = ("myri10g", "quadrics"),
        prefix: str = "node",
    ) -> "Fabric":
        """N nodes, dedicated point-to-point wires per pair and rail
        (the shape :meth:`MpiWorld.create` has always built)."""
        return cls(
            nodes=tuple(f"{prefix}{i}" for i in range(n)),
            rails=tuple(FabricRail(technology=r, kind="wire") for r in rails),
        )

    @classmethod
    def flat(
        cls,
        n: int,
        rails: Sequence[str] = ("myri10g", "quadrics"),
        switch_latency: float = 0.3,
        prefix: str = "node",
    ) -> "Fabric":
        """N nodes hanging off one flat switch per rail technology."""
        return cls(
            nodes=tuple(f"{prefix}{i}" for i in range(n)),
            rails=tuple(
                FabricRail(
                    technology=r, kind="switch", switch_latency=switch_latency
                )
                for r in rails
            ),
        )

    @classmethod
    def fat_tree(
        cls,
        n: int,
        rails: Sequence[str] = ("myri10g", "quadrics"),
        pod_size: int = 0,
        spines: int = 2,
        switch_latency: float = 0.3,
        prefix: str = "node",
        adaptive: bool = True,
    ) -> "Fabric":
        """N nodes behind a two-stage fat tree per rail technology."""
        return cls(
            nodes=tuple(f"{prefix}{i}" for i in range(n)),
            rails=tuple(
                FabricRail(
                    technology=r,
                    kind="fat_tree",
                    switch_latency=switch_latency,
                    pod_size=pod_size,
                    spines=spines,
                    adaptive=adaptive,
                )
                for r in rails
            ),
        )

    # ------------------------------------------------------------------ #
    # serialization (the config file `fabric:` section)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "nodes": list(self.nodes),
            "rails": [rail.to_dict() for rail in self.rails],
        }

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Fabric":
        known = {"nodes", "prefix", "rails"}
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fabric keys {sorted(unknown)}; known: {sorted(known)}"
            )
        nodes_spec = spec.get("nodes")
        prefix = str(spec.get("prefix", "node"))
        if isinstance(nodes_spec, int):
            nodes = tuple(f"{prefix}{i}" for i in range(nodes_spec))
        elif isinstance(nodes_spec, (list, tuple)) and nodes_spec:
            nodes = tuple(str(n) for n in nodes_spec)
        else:
            raise ConfigurationError(
                f"fabric 'nodes' must be a count or a non-empty name list; "
                f"got {nodes_spec!r}"
            )
        rails_spec = spec.get("rails")
        if not rails_spec:
            raise ConfigurationError("fabric needs a non-empty 'rails' list")
        return cls(
            nodes=nodes,
            rails=tuple(FabricRail.from_dict(r) for r in rails_spec),
        )

    # ------------------------------------------------------------------ #
    # rendering (the `cli topology` view)
    # ------------------------------------------------------------------ #

    def describe(self, profiles: Optional[Mapping[str, Any]] = None) -> str:
        """ASCII picture of the fabric: nodes, per-rail link graphs, and
        (when sampled ``profiles`` are given) per-link rate estimates."""
        n = self.size
        lines = [f"fabric: {n} nodes"]
        if n <= 12:
            lines.append("  " + "  ".join(self.nodes))
        else:
            lines.append(
                f"  {self.nodes[0]} .. {self.nodes[-1]} ({n} nodes)"
            )
        for rail in self.rails:
            est = (profiles or {}).get(rail.technology)
            rate = ""
            if est is not None:
                plateau = est.plateau_bandwidth()
                rate = f", ~{plateau:.0f} B/us/link plateau"
            if rail.kind == "wire":
                links = n * (n - 1) // 2
                lines.append(
                    f"  rail {rail.technology:<10} wire mesh: {links} "
                    f"dedicated link(s){rate}"
                )
            elif rail.kind == "switch":
                lines.append(
                    f"  rail {rail.technology:<10} flat switch: {n} ports, "
                    f"latency {rail.switch_latency}us{rate}"
                )
            else:
                pod = self.pod_size_of(rail)
                pods = (n + pod - 1) // pod
                lines.append(
                    f"  rail {rail.technology:<10} fat tree: {pods} pod(s) x "
                    f"{pod} node(s), {rail.spines} spine uplink(s), "
                    f"latency {rail.switch_latency}us/stage{rate}"
                )
        return "\n".join(lines)
