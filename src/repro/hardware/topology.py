"""Hierarchical CPU topology (sockets × cores) and signalling costs.

Marcel "was carefully designed to ... efficiently exploit hierarchical
architectures" (paper §III-A).  For the strategy, the observable part of
that hierarchy is the *cost of poking another core*: raising a tasklet on
a sibling core (same socket) is cheaper than crossing the interconnect.
The paper measures the end-to-end offload cost at 3 µs (6 µs when the
target thread must be preempted by a signal, §III-D); those are exposed
here as the machine-wide defaults and modulated by distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.errors import ConfigurationError

#: Paper §III-D: communication between the strategy and a remote core.
DEFAULT_SIGNAL_COST_US: float = 3.0
#: Paper §III-D: extra cost when a running thread must be preempted.
DEFAULT_PREEMPT_COST_US: float = 6.0


@dataclass(frozen=True)
class CpuTopology:
    """Socket/core layout plus inter-core signalling cost model.

    The default layout is the paper's testbed: a *dual dual-core Opteron*
    node (2 sockets × 2 cores).

    ``signal_cost_us`` is the cost of notifying an **idle** remote core
    that a send request is registered (tasklet wake-up, §III-D: 3 µs);
    ``preempt_cost_us`` is the cost when the remote core runs a computing
    thread that must be preempted by a signal (6 µs).
    ``cross_socket_factor`` scales both when the target core sits on a
    different socket (1.0 = flat cost, the paper's reported numbers).
    """

    sockets: int = 2
    cores_per_socket: int = 2
    signal_cost_us: float = DEFAULT_SIGNAL_COST_US
    preempt_cost_us: float = DEFAULT_PREEMPT_COST_US
    cross_socket_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigurationError(
                f"topology needs >=1 socket and core, got "
                f"{self.sockets}x{self.cores_per_socket}"
            )
        if self.signal_cost_us < 0 or self.preempt_cost_us < 0:
            raise ConfigurationError("signalling costs must be >= 0")
        if self.cross_socket_factor < 1.0:
            raise ConfigurationError(
                "cross_socket_factor < 1 would make remote sockets cheaper "
                "than local ones"
            )

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core_id: int) -> int:
        """Socket index of a global core id (cores numbered socket-major)."""
        if not 0 <= core_id < self.total_cores:
            raise ConfigurationError(
                f"core id {core_id} outside 0..{self.total_cores - 1}"
            )
        return core_id // self.cores_per_socket

    def core_ids(self) -> Iterator[int]:
        return iter(range(self.total_cores))

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def signal_cost(self, src: int, dst: int, preempt: bool = False) -> float:
        """Cost (µs) for core ``src`` to hand work to core ``dst``.

        ``preempt=True`` models the case where ``dst`` runs a computing
        thread that must be interrupted by a signal.  Signalling oneself is
        free — the strategy simply keeps the chunk on the local core.
        """
        if src == dst:
            return 0.0
        base = self.preempt_cost_us if preempt else self.signal_cost_us
        if not self.same_socket(src, dst):
            base *= self.cross_socket_factor
        return base

    @classmethod
    def paper_testbed(cls) -> "CpuTopology":
        """The evaluation platform: dual dual-core Opteron (§IV)."""
        return cls(sockets=2, cores_per_socket=2)

    @classmethod
    def flat(cls, cores: int) -> "CpuTopology":
        """A single-socket machine with ``cores`` cores (for ablations)."""
        return cls(sockets=1, cores_per_socket=cores)
