"""A cluster node: cores laid out by a topology, plus host memory costs.

NICs attach themselves to a machine when constructed (see
:mod:`repro.networks.nic`), so the strategy can enumerate *this node's*
rails and idle cores — the two quantities bounding the split factor
``min(#idle NICs, #idle cores)`` (paper §III-B).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.hardware.core import Core
from repro.hardware.topology import CpuTopology
from repro.simtime import Simulator
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.networks.nic import Nic


class Machine:
    """One cluster node in the simulation.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Node name, e.g. ``"node0"``.
    topology:
        Socket/core layout; defaults to the paper's dual dual-core node.
    memcpy_rate:
        Host memory copy throughput in B/µs.  Used for the intra-host part
        of eager sends (building aggregated packets, copying into the
        pinned send buffer) — distinct from the *PIO* rate, which is a NIC
        property because it reflects I/O-bus writes to NIC memory.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        topology: Optional[CpuTopology] = None,
        memcpy_rate: float = 3000.0,
    ) -> None:
        if memcpy_rate <= 0:
            raise ConfigurationError(f"memcpy_rate must be > 0, got {memcpy_rate}")
        self.sim = sim
        self.name = name
        self.topology = topology or CpuTopology.paper_testbed()
        self.memcpy_rate = memcpy_rate
        self.cores: List[Core] = [
            Core(sim, core_id=i, socket_id=self.topology.socket_of(i))
            for i in self.topology.core_ids()
        ]
        self.nics: List["Nic"] = []

    def __repr__(self) -> str:
        return (
            f"<Machine {self.name}: {len(self.cores)} cores, "
            f"{len(self.nics)} NICs>"
        )

    # ------------------------------------------------------------------ #
    # core queries (strategy-facing)
    # ------------------------------------------------------------------ #

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def idle_cores(self, exclude: Optional[Core] = None) -> List[Core]:
        """Cores idle *right now*, optionally excluding the calling core.

        This is the set PIOMan advertises to the strategy when it decides
        how many chunks can be submitted in parallel (§III-B).
        """
        return [
            c for c in self.cores if c.is_idle and (exclude is None or c is not exclude)
        ]

    def memcpy_cost(self, nbytes: int) -> float:
        """µs of CPU time to copy ``nbytes`` within host memory."""
        if nbytes < 0:
            raise ConfigurationError(f"negative copy size: {nbytes}")
        return nbytes / self.memcpy_rate

    # ------------------------------------------------------------------ #
    # NIC registry (populated by repro.networks.nic.Nic.__init__)
    # ------------------------------------------------------------------ #

    def _attach_nic(self, nic: "Nic") -> None:
        if nic in self.nics:
            raise ConfigurationError(f"{nic!r} attached twice to {self.name}")
        self.nics.append(nic)

    def nic_by_name(self, name: str) -> "Nic":
        for nic in self.nics:
            if nic.name == name:
                return nic
        raise ConfigurationError(f"no NIC named {name!r} on {self.name}")

    def idle_nics(self) -> List["Nic"]:
        """Rails with no transfer in flight and an empty request queue."""
        return [n for n in self.nics if n.is_idle]
