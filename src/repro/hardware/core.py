"""A CPU core as a serially-occupied virtual-time resource.

Two usage styles, matching the simulator's two styles:

* **process style** — ``yield from core.occupy(cost, label)`` from inside a
  simulation process: waits for the core, holds it ``cost`` µs, releases;
* **callback style** — ``core.run(cost, fn, *args)``: queues a work item;
  when the core reaches it, holds the core ``cost`` µs then calls ``fn``.

Both styles share one FIFO, so PIO copies, tasklet bodies and application
compute contend for the core exactly as they would on real hardware.

The core also keeps the two pieces of bookkeeping the paper's strategy
needs: *is the core idle right now?* (the strategy splits into at most
``min(#idle NICs, #idle cores)`` chunks, §III-B) and *when will it become
idle?* (idle-time prediction, §II-B / Fig. 2 — applied to cores the same
way it is applied to NICs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.simtime import Resource, Simulator, Timeout
from repro.util.errors import SchedulingError


@dataclass
class CoreWork:
    """One completed occupancy interval, for utilization accounting."""

    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Core:
    """A single CPU core.

    Parameters
    ----------
    sim:
        The simulator this core lives in.
    core_id:
        Global core index within the machine.
    socket_id:
        Socket (package) the core belongs to; inter-core signalling is
        cheaper within a socket (see :class:`~repro.hardware.topology.CpuTopology`).
    """

    def __init__(self, sim: Simulator, core_id: int, socket_id: int = 0) -> None:
        self.sim = sim
        self.core_id = core_id
        self.socket_id = socket_id
        self._res = Resource(sim, capacity=1, name=f"core{core_id}")
        self._busy_until: float = 0.0
        self.work_log: List[CoreWork] = []
        #: total µs this core has been held (kept incrementally so that
        #: utilization queries do not scan the log)
        self.busy_time: float = 0.0

    def __repr__(self) -> str:
        state = "idle" if self.is_idle else f"busy until {self._busy_until:.2f}"
        return f"<Core {self.core_id} (socket {self.socket_id}) {state}>"

    # ------------------------------------------------------------------ #
    # state queries used by the strategy layer
    # ------------------------------------------------------------------ #

    @property
    def is_idle(self) -> bool:
        """True when nothing holds or waits for the core *and* no declared
        work extends past the current instant."""
        return (
            self._res.in_use == 0
            and self._res.queued == 0
            and self.sim.now >= self._busy_until
        )

    @property
    def busy_until(self) -> float:
        """Predicted instant the core frees up, given declared work costs.

        For an idle core this is the current time.  The prediction is
        exact as long as every occupier declared its true cost — which the
        engine guarantees, since PIO copy durations are computed from the
        message size before the copy is issued.
        """
        return max(self.sim.now, self._busy_until)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of ``[since, now]`` the core spent occupied."""
        window = self.sim.now - since
        if window <= 0:
            return 0.0
        busy = sum(
            min(w.end, self.sim.now) - max(w.start, since)
            for w in self.work_log
            if w.end > since
        )
        return busy / window

    # ------------------------------------------------------------------ #
    # occupancy
    # ------------------------------------------------------------------ #

    def occupy(self, cost: float, label: str = "work", on_start=None):
        """Process-style occupancy: ``yield from core.occupy(cost)``.

        Declares ``cost`` up front (feeding :attr:`busy_until`), waits for
        the core FIFO, holds it for ``cost`` µs, then releases.
        ``on_start`` (if given) is called the instant the core is actually
        acquired — mirroring :meth:`hold_declared`, for callers that need
        to timestamp the true start of service.
        """
        if cost < 0:
            raise SchedulingError(f"negative occupancy cost: {cost}")
        self._declare(cost)
        req = self._res.request()
        yield req
        start = self.sim.now
        if on_start is not None:
            on_start()
        yield Timeout(cost)
        self._res.release(req)
        self._record(start, self.sim.now, label)

    def run(
        self,
        cost: float,
        callback: Optional[Callable[..., None]] = None,
        *args: Any,
        label: str = "work",
    ) -> None:
        """Callback-style occupancy: queue ``cost`` µs of work, then call
        ``callback(*args)`` (if given) the instant the work completes."""
        if cost < 0:
            raise SchedulingError(f"negative occupancy cost: {cost}")
        self._declare(cost)

        def body():
            req = self._res.request()
            yield req
            start = self.sim.now
            yield Timeout(cost)
            self._res.release(req)
            self._record(start, self.sim.now, label)
            if callback is not None:
                callback(*args)

        self.sim.spawn(body(), name=f"core{self.core_id}.{label}")

    def declare(self, cost: float) -> None:
        """Pre-announce ``cost`` µs of imminent work (feeds :attr:`busy_until`).

        Used when the work item will start after an external wait (e.g. a
        PIO copy queued behind a NIC transmit engine) but the strategy
        must already see the core as committed.  Pair with
        :meth:`hold_declared`, which performs the occupancy *without*
        declaring again.
        """
        if cost < 0:
            raise SchedulingError(f"negative occupancy cost: {cost}")
        self._declare(cost)

    def hold_declared(self, cost: float, label: str = "work", on_start=None):
        """Process-style occupancy for work already announced via
        :meth:`declare`: ``yield from core.hold_declared(cost)``.

        ``on_start`` (if given) is called the instant the core is actually
        acquired — the precise start of the copy, which timing-sensitive
        callers (the NIC pipelines) need to timestamp.
        """
        if cost < 0:
            raise SchedulingError(f"negative occupancy cost: {cost}")
        req = self._res.request()
        yield req
        start = self.sim.now
        if on_start is not None:
            on_start()
        yield Timeout(cost)
        self._res.release(req)
        self._record(start, self.sim.now, label)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _declare(self, cost: float) -> None:
        base = max(self.sim.now, self._busy_until)
        self._busy_until = base + cost

    def _record(self, start: float, end: float, label: str) -> None:
        self.work_log.append(CoreWork(start, end, label))
        self.busy_time += end - start
