"""NIC idle prediction and rail-subset selection (paper §II-B, Fig. 2).

The strategy must decide *which* NICs participate before computing the
split ratio: "NIC1 is typically discarded provided that NIC2 is expected
to become free before NIC1".  :class:`CompletionPredictor` combines each
NIC's :attr:`busy_until` (exact, because every submitter declares its
transmit cost) with the sampled estimator and picks the subset of rails
whose predicted completion is smallest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import NicEstimator, SampleTable
from repro.core.packets import TransferMode
from repro.core.split import SplitResult, dichotomy_split, waterfill_split
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError, SamplingError, SchedulingError


@dataclass(slots=True)
class RailPlan:
    """A concrete multirail transfer decision (slotted — every send in
    a storm allocates one)."""

    nics: List[Nic]                  # rails actually used (chunk size > 0)
    sizes: List[int]                 # bytes per rail, aligned with nics
    predicted_completion: float
    split: SplitResult               # full solver output (diagnostics)
    #: per-rail confidence scores, attached when the calibration drift
    #: loop planned (or reviewed) this decision; None otherwise
    confidence: Optional[Dict[str, float]] = None
    #: fallback-ladder trust level the plan was made under
    #: ("full" / "partial" / "single"); None when calibration is off
    trust: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.nics) != len(self.sizes):
            raise ConfigurationError("plan rails/sizes length mismatch")

    @property
    def total(self) -> int:
        return sum(self.sizes)


#: cap on the per-predictor plan cache before it is reset wholesale
_PLAN_CACHE_LIMIT = 8_192


class _ScaledTable:
    """A sampled curve stretched by a degradation factor.

    A NIC running at ``bw_factor`` of its nominal bandwidth takes
    ``1/bw_factor`` times as long per transfer, so times scale up and the
    inverse (bytes movable within ``t``) scales the time down first.
    """

    __slots__ = ("_table", "_factor")

    def __init__(self, table: SampleTable, bw_factor: float) -> None:
        self._table = table
        self._factor = bw_factor

    def __call__(self, size: float) -> float:
        return self._table(size) / self._factor

    def batch(self, sizes) -> "np.ndarray":
        # Elementwise division by the same scalar the scalar path uses:
        # bit-equal to calling __call__ per size.
        return self._table.batch(sizes) / self._factor

    def inverse(self, time: float) -> float:
        return self._table.inverse(time * self._factor)


class _ScaledEstimator:
    """Degradation-aware view of an immutable :class:`NicEstimator`.

    The split solvers only touch ``name``, ``transfer_time`` and the
    ``eager``/``dma`` tables, so this thin wrapper is all a degraded rail
    needs; the wrapped estimator's memo tables keep doing the heavy
    lifting underneath.
    """

    __slots__ = ("_est", "_factor", "name", "eager", "dma")

    def __init__(self, est: NicEstimator, bw_factor: float) -> None:
        self._est = est
        self._factor = bw_factor
        self.name = est.name
        self.eager = _ScaledTable(est.eager, bw_factor)
        self.dma = _ScaledTable(est.dma, bw_factor)

    def transfer_time(self, size: int, mode: TransferMode) -> float:
        return self._est.transfer_time(size, mode) / self._factor


class CompletionPredictor:
    """Predicts transfer completions and selects rail subsets.

    Repeated same-shape decisions — identical ``(rail set, size, mode,
    busy offsets)`` — are served from a per-predictor cache instead of
    re-running the subset enumeration and bisections: steady-state
    traffic and every size sweep re-plan the same shapes constantly.
    Estimators are immutable after construction, so cached plans can
    only go stale if the estimator set itself is swapped — which builds
    a fresh predictor (``Cluster.resample`` does exactly that); an
    explicit :meth:`invalidate_plan_cache` exists for anything exotic.

    ``offset_quantum`` (µs) buckets the busy offsets used in the cache
    *key*.  The default 0.0 keys on exact offsets, which guarantees a
    cache hit never changes any planned byte — simulated timestamps stay
    bit-identical to an uncached run.  A coarser quantum trades that
    exactness for more hits under jittery offsets; opt-in only.
    """

    def __init__(
        self,
        estimators: Dict[str, NicEstimator],
        offset_quantum: float = 0.0,
    ) -> None:
        if not estimators:
            raise SamplingError("predictor needs at least one estimator")
        if offset_quantum < 0:
            raise ConfigurationError(f"negative offset quantum: {offset_quantum}")
        self.estimators = dict(estimators)
        self.offset_quantum = offset_quantum
        self._plan_cache: Dict[tuple, tuple] = {}
        self._scaled_cache: Dict[Tuple[str, float], _ScaledEstimator] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # observability (bound by the owning engine; None = untraced)
        self._obs = None
        self._obs_node = ""

    def bind_obs(self, obs, node: str) -> None:
        """Attach an :class:`~repro.obs.Observability` bundle; plan
        decisions are then traced under ``node``'s lanes.  Re-bound by
        ``Cluster.resample`` when fresh estimators swap the predictor."""
        self._obs = obs
        self._obs_node = node

    def invalidate_plan_cache(self) -> None:
        """Drop every cached split decision (hit/miss counters survive)."""
        self._plan_cache.clear()

    def _quantize(self, offset: float) -> float:
        q = self.offset_quantum
        if q <= 0.0:
            return offset
        return round(offset / q) * q

    def estimator_for(self, nic: Nic) -> NicEstimator:
        """The estimator sampled for this NIC's technology."""
        try:
            return self.estimators[nic.profile.name]
        except KeyError:
            raise SamplingError(
                f"no sampling profile for {nic.profile.name!r}; "
                f"sampled: {sorted(self.estimators)}"
            ) from None

    def _planning_estimator(self, nic: Nic):
        """The estimator as planning should see it *right now*: the
        sampled curves, stretched when the NIC is currently degraded.
        Healthy NICs get the raw (shared, memoized) estimator so the
        fault-free path stays bit-identical."""
        est = self.estimator_for(nic)
        factor = nic.bw_factor
        if factor == 1.0:
            return est
        key = (nic.profile.name, factor)
        scaled = self._scaled_cache.get(key)
        if scaled is None or scaled._est is not est:
            scaled = _ScaledEstimator(est, factor)
            self._scaled_cache[key] = scaled
        return scaled

    # ------------------------------------------------------------------ #
    # point predictions
    # ------------------------------------------------------------------ #

    def busy_offset(self, nic: Nic) -> float:
        """µs until the NIC's transmit engine frees up (0 when idle)."""
        return nic.busy_until - nic.sim.now

    def _rail_offset(self, nic: Nic) -> float:
        """Busy offset plus any fault-injected delivery latency.  The
        addition is skipped entirely on healthy rails so the fault-free
        arithmetic stays bit-identical."""
        off = self.busy_offset(nic)
        extra = nic.extra_latency
        return off if extra == 0.0 else off + extra

    def predict(self, nic: Nic, size: int, mode: TransferMode) -> float:
        """Predicted completion (µs from now) of a chunk on this NIC,
        including the wait for the NIC to become idle (Fig. 2) and the
        slowdown of any active degradation fault."""
        return self._rail_offset(nic) + self._planning_estimator(
            nic
        ).transfer_time(size, mode)

    def planning_transfer_time(
        self, nic: Nic, size: int, mode: TransferMode
    ) -> float:
        """Pure service-time prediction for one chunk (no busy offset,
        no fault latency) — the quantity the accuracy telemetry pairs
        with the chunk's measured pipeline time."""
        return self._planning_estimator(nic).transfer_time(size, mode)

    # ------------------------------------------------------------------ #
    # batched candidate pricing (one vectorized call across all rails
    # and all candidate split points of a plan)
    # ------------------------------------------------------------------ #

    def price_candidates(
        self,
        nics: Sequence[Nic],
        candidate_sizes: Sequence[Sequence[float]],
        mode: TransferMode,
    ) -> "np.ndarray":
        """Predicted completions of many candidate splits in one call.

        ``candidate_sizes`` is a ``(candidates, rails)`` matrix: row
        ``c`` assigns ``candidate_sizes[c][r]`` bytes to ``nics[r]``.
        Returns one predicted completion per row::

            completion[c] = max_r( busy_offset_r + T_r(size[c, r]) )

        — the quantity the §II-B solvers minimize, evaluated with one
        ``SampleTable.batch`` pass per rail instead of a Python call per
        ``(candidate, rail)`` cell.  Bit-equal to
        :meth:`price_candidates_scalar` on every element (the hypothesis
        suite asserts it), so analysis and solver code can mix the two
        paths freely.  Degraded rails price through the same scaled
        planning view the scalar path uses.

        Like the solvers' interior evaluation (``dichotomy_split``'s
        ``time_a``/``time_b``), a zero-byte cell is priced at the
        curve's zero-size intercept — the "drop this rail entirely"
        special case stays where it always lived, in the caller.
        """
        arr = np.asarray(candidate_sizes, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != len(nics):
            raise ConfigurationError(
                f"candidate matrix shape {arr.shape} does not match "
                f"{len(nics)} rail(s)"
            )
        completion: Optional[np.ndarray] = None
        for r, nic in enumerate(nics):
            est = self._planning_estimator(nic)
            table = est.eager if mode is TransferMode.EAGER else est.dma
            rail_completion = self._rail_offset(nic) + table.batch(arr[:, r])
            completion = (
                rail_completion
                if completion is None
                else np.maximum(completion, rail_completion)
            )
        assert completion is not None
        return completion

    def price_candidates_scalar(
        self,
        nics: Sequence[Nic],
        candidate_sizes: Sequence[Sequence[float]],
        mode: TransferMode,
    ) -> List[float]:
        """Reference scalar loop for :meth:`price_candidates`.

        One table call per ``(candidate, rail)`` cell — what pricing
        cost before vectorization, kept as the bit-equality oracle and
        the baseline side of the ``pricing`` benchmark pair in
        ``BENCH_PR6.json``.
        """
        tables = []
        for nic in nics:
            est = self._planning_estimator(nic)
            tables.append(
                (
                    est.eager if mode is TransferMode.EAGER else est.dma,
                    self._rail_offset(nic),
                )
            )
        out: List[float] = []
        for row in candidate_sizes:
            if len(row) != len(nics):
                raise ConfigurationError(
                    f"candidate row width {len(row)} does not match "
                    f"{len(nics)} rail(s)"
                )
            out.append(
                max(off + table(s) for (table, off), s in zip(tables, row))
            )
        return out

    def price_boundaries(
        self,
        nics: Sequence[Nic],
        size: int,
        mode: TransferMode,
        boundaries: Sequence[float],
    ) -> "np.ndarray":
        """Price every two-rail boundary candidate in one vectorized call.

        Boundary ``b`` sends ``b`` bytes on ``nics[0]`` and ``size - b``
        on ``nics[1]`` — the dichotomy solver's search axis, priced as a
        whole grid at once (grid sweeps, ablation benches, charts).
        """
        if len(nics) != 2:
            raise ConfigurationError(
                f"price_boundaries takes exactly 2 rails, got {len(nics)}"
            )
        b = np.asarray(boundaries, dtype=np.float64)
        return self.price_candidates(
            nics, np.stack((b, size - b), axis=1), mode
        )

    # ------------------------------------------------------------------ #
    # rail-subset selection + split (the full §II-B decision)
    # ------------------------------------------------------------------ #

    def plan(
        self,
        nics: Sequence[Nic],
        size: int,
        mode: TransferMode,
        max_rails: Optional[int] = None,
        fixed_cost: float = 0.0,
    ) -> RailPlan:
        """Choose the rail subset and split that minimize completion.

        Every non-empty subset of ``nics`` (capped at ``max_rails``) is
        evaluated with an equal-completion split; ties favour fewer rails
        (cheaper).  ``fixed_cost`` is added per *additional* rail beyond
        the first — the offloading cost TO of equation (1), zero for
        rendezvous DMA chunks.

        For two-rail subsets the paper's dichotomy is used; larger subsets
        fall back to waterfilling.
        """
        nics = list(nics)
        if not nics:
            raise ConfigurationError("plan over zero NICs")
        # Safety net behind the engine's rails_to filtering: never plan
        # bytes onto a rail that is currently down.
        up = [n for n in nics if n.is_up]
        if not up:
            raise SchedulingError(
                f"no up rail to plan over: {[n.qualified_name for n in nics]}"
            )
        nics = up
        limit = len(nics) if max_rails is None else max(1, min(max_rails, len(nics)))

        # Split-decision cache: same shape → same plan, skip the solvers.
        # Degradation factors are part of the shape — a rail at half
        # bandwidth must not reuse plans computed while it was healthy.
        offsets = tuple(self._rail_offset(n) for n in nics)
        cache_key = (
            tuple(n.name for n in nics),
            size,
            mode,
            tuple(self._quantize(off) for off in offsets),
            limit,
            fixed_cost,
            tuple(n.bw_factor for n in nics),
        )
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            self.plan_cache_hits += 1
            subset_idx, sizes, times, iterations, completion = cached
            split = SplitResult(
                sizes=list(sizes),
                predicted_times=list(times),
                iterations=iterations,
            )
            subset = [nics[i] for i in subset_idx]
            used = [(n, s) for n, s in zip(subset, split.sizes) if s > 0]
            plan = RailPlan(
                nics=[n for n, _ in used],
                sizes=[s for _, s in used],
                predicted_completion=completion,
                split=split,
            )
            if self._obs is not None and self._obs.on:
                self._trace_plan(
                    nics, offsets, size, mode, plan, iterations, cached=True
                )
            return plan
        self.plan_cache_misses += 1

        all_rails = [
            (self._planning_estimator(n), off) for n, off in zip(nics, offsets)
        ]
        best: Optional[Tuple[float, int, Tuple[int, ...], SplitResult]] = None
        for k in range(1, limit + 1):
            for subset_idx in itertools.combinations(range(len(nics)), k):
                rails = [all_rails[i] for i in subset_idx]
                if k == 1:
                    est, off = rails[0]
                    split = SplitResult(
                        sizes=[size],
                        predicted_times=[off + est.transfer_time(size, mode)],
                        iterations=0,
                    )
                elif k == 2:
                    split = dichotomy_split(size, rails, mode)
                else:
                    split = waterfill_split(size, rails, mode)
                active = split.active_rails
                completion = split.predicted_completion + (
                    fixed_cost if active > 1 else 0.0
                )
                key = (completion, active)
                if best is None or key < (best[0], best[1]):
                    best = (completion, active, subset_idx, split)
        assert best is not None
        completion, _, subset_idx, split = best
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[cache_key] = (
            subset_idx,
            tuple(split.sizes),
            tuple(split.predicted_times),
            split.iterations,
            completion,
        )
        subset = [nics[i] for i in subset_idx]
        used = [(n, s) for n, s in zip(subset, split.sizes) if s > 0]
        plan = RailPlan(
            nics=[n for n, _ in used],
            sizes=[s for _, s in used],
            predicted_completion=completion,
            split=split,
        )
        if self._obs is not None and self._obs.on:
            self._trace_plan(
                nics, offsets, size, mode, plan, split.iterations, cached=False
            )
        return plan

    def _trace_plan(
        self,
        considered: Sequence[Nic],
        offsets: Sequence[float],
        size: int,
        mode: TransferMode,
        plan: RailPlan,
        iterations: int,
        cached: bool,
    ) -> None:
        """Record one §II-B decision: rails considered, rails discarded
        (the Fig. 2 path), split ratio, dichotomy iterations."""
        from repro.obs.metrics import DEFAULT_DEPTH_BUCKETS

        obs = self._obs
        node = self._obs_node
        obs.metrics.counter(f"predictor.{node}.plans").inc()
        obs.metrics.counter(
            f"predictor.{node}.plan_cache_{'hits' if cached else 'misses'}"
        ).inc()
        obs.metrics.histogram(
            f"predictor.{node}.rails_per_plan", bounds=DEFAULT_DEPTH_BUCKETS
        ).observe(len(plan.nics))
        tr = obs.tracer
        if not tr.enabled:
            return
        chosen = {n.qualified_name for n in plan.nics}
        discarded = [
            {
                "rail": n.qualified_name,
                "busy_offset_us": off,
                # The Fig. 2 rule: the chosen subset is predicted to
                # finish before this rail would help.
                "reason": "predicted-slower",
            }
            for n, off in zip(considered, offsets)
            if n.qualified_name not in chosen
        ]
        tr.instant(
            node, "planner", "plan", considered[0].sim.now, cat="decision",
            args={
                "size": size,
                "mode": mode.value,
                "considered": [n.qualified_name for n in considered],
                "busy_offsets_us": list(offsets),
                "chosen": sorted(chosen),
                "chunk_sizes": list(plan.sizes),
                "iterations": iterations,
                "predicted_completion_us": plan.predicted_completion,
                "cache": "hit" if cached else "miss",
            },
        )
