"""NIC idle prediction and rail-subset selection (paper §II-B, Fig. 2).

The strategy must decide *which* NICs participate before computing the
split ratio: "NIC1 is typically discarded provided that NIC2 is expected
to become free before NIC1".  :class:`CompletionPredictor` combines each
NIC's :attr:`busy_until` (exact, because every submitter declares its
transmit cost) with the sampled estimator and picks the subset of rails
whose predicted completion is smallest.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import NicEstimator
from repro.core.packets import TransferMode
from repro.core.split import SplitResult, dichotomy_split, waterfill_split
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError, SamplingError


@dataclass
class RailPlan:
    """A concrete multirail transfer decision."""

    nics: List[Nic]                  # rails actually used (chunk size > 0)
    sizes: List[int]                 # bytes per rail, aligned with nics
    predicted_completion: float
    split: SplitResult               # full solver output (diagnostics)

    def __post_init__(self) -> None:
        if len(self.nics) != len(self.sizes):
            raise ConfigurationError("plan rails/sizes length mismatch")

    @property
    def total(self) -> int:
        return sum(self.sizes)


class CompletionPredictor:
    """Predicts transfer completions and selects rail subsets."""

    def __init__(self, estimators: Dict[str, NicEstimator]) -> None:
        if not estimators:
            raise SamplingError("predictor needs at least one estimator")
        self.estimators = dict(estimators)

    def estimator_for(self, nic: Nic) -> NicEstimator:
        """The estimator sampled for this NIC's technology."""
        try:
            return self.estimators[nic.profile.name]
        except KeyError:
            raise SamplingError(
                f"no sampling profile for {nic.profile.name!r}; "
                f"sampled: {sorted(self.estimators)}"
            ) from None

    # ------------------------------------------------------------------ #
    # point predictions
    # ------------------------------------------------------------------ #

    def busy_offset(self, nic: Nic) -> float:
        """µs until the NIC's transmit engine frees up (0 when idle)."""
        return nic.busy_until - nic.sim.now

    def predict(self, nic: Nic, size: int, mode: TransferMode) -> float:
        """Predicted completion (µs from now) of a chunk on this NIC,
        including the wait for the NIC to become idle (Fig. 2)."""
        return self.busy_offset(nic) + self.estimator_for(nic).transfer_time(
            size, mode
        )

    # ------------------------------------------------------------------ #
    # rail-subset selection + split (the full §II-B decision)
    # ------------------------------------------------------------------ #

    def plan(
        self,
        nics: Sequence[Nic],
        size: int,
        mode: TransferMode,
        max_rails: Optional[int] = None,
        fixed_cost: float = 0.0,
    ) -> RailPlan:
        """Choose the rail subset and split that minimize completion.

        Every non-empty subset of ``nics`` (capped at ``max_rails``) is
        evaluated with an equal-completion split; ties favour fewer rails
        (cheaper).  ``fixed_cost`` is added per *additional* rail beyond
        the first — the offloading cost TO of equation (1), zero for
        rendezvous DMA chunks.

        For two-rail subsets the paper's dichotomy is used; larger subsets
        fall back to waterfilling.
        """
        nics = list(nics)
        if not nics:
            raise ConfigurationError("plan over zero NICs")
        limit = len(nics) if max_rails is None else max(1, min(max_rails, len(nics)))

        best: Optional[Tuple[float, int, List[Nic], SplitResult]] = None
        for k in range(1, limit + 1):
            for subset in itertools.combinations(nics, k):
                rails = [
                    (self.estimator_for(n), self.busy_offset(n)) for n in subset
                ]
                if k == 1:
                    est, off = rails[0]
                    split = SplitResult(
                        sizes=[size],
                        predicted_times=[off + est.transfer_time(size, mode)],
                        iterations=0,
                    )
                elif k == 2:
                    split = dichotomy_split(size, rails, mode)
                else:
                    split = waterfill_split(size, rails, mode)
                active = split.active_rails
                completion = split.predicted_completion + (
                    fixed_cost if active > 1 else 0.0
                )
                key = (completion, active)
                if best is None or key < (best[0], best[1]):
                    best = (completion, active, list(subset), split)
        assert best is not None
        completion, _, subset, split = best
        used = [(n, s) for n, s in zip(subset, split.sizes) if s > 0]
        return RailPlan(
            nics=[n for n, _ in used],
            sizes=[s for _, s in used],
            predicted_completion=completion,
            split=split,
        )
