"""Runtime statistics snapshots for engines and clusters.

A downstream user tuning a strategy wants one call that answers: what
moved, over which rails, how busy were the cores, how often did the
runtime offload or preempt.  :func:`engine_stats` snapshots one node;
:func:`cluster_report` renders every node side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

from repro.util.units import bytes_per_us_to_mbps, format_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.cluster import Cluster
    from repro.core.engine import NmadEngine


@dataclass(frozen=True)
class NicStats:
    name: str
    technology: str
    bytes_sent: int
    transfers_sent: int
    utilization: float


@dataclass(frozen=True)
class CoreStats:
    core_id: int
    busy_us: float
    utilization: float


@dataclass(frozen=True)
class EngineStats:
    """One node's communication activity since the simulation began."""

    node: str
    strategy: str
    now_us: float
    messages_sent: int
    messages_completed: int
    bytes_sent: int
    scheduler_activations: int
    pioman_events: int
    pioman_offloads: int
    pioman_rx_spills: int
    marcel_tasklets: int
    marcel_preemptions: int
    nics: List[NicStats] = field(default_factory=list)
    cores: List[CoreStats] = field(default_factory=list)

    @property
    def egress_mbps(self) -> float:
        """Average egress bandwidth over the whole run window."""
        if self.now_us <= 0:
            return 0.0
        return bytes_per_us_to_mbps(self.bytes_sent / self.now_us)

    def render(self) -> str:
        lines = [
            f"{self.node} (strategy {self.strategy}) at t={self.now_us:.1f}us",
            f"  messages: {self.messages_sent} sent, "
            f"{self.messages_completed} completed, "
            f"{format_size(self.bytes_sent)} out "
            f"({self.egress_mbps:.1f} MB/s avg)",
            f"  runtime: {self.scheduler_activations} activations, "
            f"{self.pioman_events} rx events, {self.pioman_offloads} offloads, "
            f"{self.pioman_rx_spills} rx spills, "
            f"{self.marcel_tasklets} tasklets, "
            f"{self.marcel_preemptions} preemptions",
        ]
        for nic in self.nics:
            lines.append(
                f"  nic {nic.name:<12} {format_size(nic.bytes_sent):>8} in "
                f"{nic.transfers_sent:>4} transfers, "
                f"{nic.utilization * 100:5.1f}% busy"
            )
        for core in self.cores:
            lines.append(
                f"  core{core.core_id}  {core.busy_us:10.1f}us busy "
                f"({core.utilization * 100:5.1f}%)"
            )
        return "\n".join(lines)


def engine_stats(engine: "NmadEngine") -> EngineStats:
    """Snapshot one engine's counters and substrate utilization."""
    machine = engine.machine
    now = engine.sim.now
    return EngineStats(
        node=machine.name,
        strategy=engine.strategy.name,
        now_us=now,
        messages_sent=engine.messages_sent,
        messages_completed=engine.messages_completed,
        bytes_sent=engine.bytes_sent,
        scheduler_activations=engine.scheduler.activations,
        pioman_events=engine.pioman.events_detected,
        pioman_offloads=engine.pioman.offloads,
        pioman_rx_spills=engine.pioman.rx_spills,
        marcel_tasklets=engine.marcel.tasklets_run,
        marcel_preemptions=engine.marcel.preemptions,
        nics=[
            NicStats(
                name=nic.name,
                technology=nic.profile.name,
                bytes_sent=nic.bytes_sent,
                transfers_sent=nic.transfers_sent,
                utilization=nic.utilization(),
            )
            for nic in machine.nics
        ],
        cores=[
            CoreStats(
                core_id=core.core_id,
                busy_us=core.busy_time,
                utilization=core.utilization(),
            )
            for core in machine.cores
        ],
    )


def cluster_report(cluster: "Cluster") -> str:
    """Render every node's :class:`EngineStats`, one block per node."""
    blocks = [
        engine_stats(cluster.engines[name]).render()
        for name in sorted(cluster.engines)
    ]
    return "\n\n".join(blocks)
