"""Split-ratio computation: equal-transfer-time chunking (paper Fig. 1c).

Messages are split so every chunk's *predicted completion* — the rail's
remaining busy time plus the sampled transfer time of the chunk — is
equal, which minimizes the completion of the whole message.

Two solvers:

* :func:`dichotomy_split` — the paper's §II-B algorithm, verbatim: start
  from an equal split, compare the two predicted durations, move the
  boundary by bisection until they are equivalent.  Two rails.
* :func:`waterfill_split` — n-rail generalization used for >2 rails and
  as the analytic cross-check in the ablation benches: bisection on the
  completion time ``T``, inverting each rail's sampled curve to find how
  many bytes it can move by ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.estimator import NicEstimator
from repro.core.packets import TransferMode
from repro.util.errors import ConfigurationError

#: a rail as the solvers see it: (estimator, busy offset in µs)
Rail = Tuple[NicEstimator, float]


@dataclass(slots=True)
class SplitResult:
    """Outcome of a split computation (slotted: one per plan, and the
    plan cache round-trips its fields as plain tuples)."""

    sizes: List[int]                 # bytes per rail, same order as input
    predicted_times: List[float]     # offset + transfer time per rail
    iterations: int

    @property
    def predicted_completion(self) -> float:
        return max(t for s, t in zip(self.sizes, self.predicted_times) if s > 0)

    @property
    def active_rails(self) -> int:
        return sum(1 for s in self.sizes if s > 0)


def _validate(size: int, rails: Sequence[Rail]) -> None:
    if size < 0:
        raise ConfigurationError(f"negative split size: {size}")
    if not rails:
        raise ConfigurationError("split over zero rails")
    for est, offset in rails:
        if offset < 0:
            raise ConfigurationError(f"negative busy offset on {est.name}: {offset}")


def equal_split(size: int, n: int) -> List[int]:
    """Iso-split: n chunks whose sizes differ by at most one byte."""
    if n < 1:
        raise ConfigurationError(f"cannot split into {n} chunks")
    base, extra = divmod(size, n)
    return [base + (1 if i < extra else 0) for i in range(n)]


def ratio_split(size: int, weights: Sequence[float]) -> List[int]:
    """Proportional split (OpenMPI-style static bandwidth ratio).

    Largest-remainder rounding keeps the total exact.
    """
    if not weights or any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigurationError(f"bad ratio weights: {weights}")
    total_w = float(sum(weights))
    raw = [size * w / total_w for w in weights]
    sizes = [int(r) for r in raw]
    remainders = sorted(
        range(len(raw)), key=lambda i: raw[i] - sizes[i], reverse=True
    )
    short = size - sum(sizes)
    for i in range(short):
        sizes[remainders[i % len(raw)]] += 1
    return sizes


def dichotomy_split(
    size: int,
    rails: Sequence[Rail],
    mode: TransferMode,
    tolerance: float = 0.05,
    max_iterations: int = 40,
) -> SplitResult:
    """The paper's two-rail bisection on the split point.

    Starts at the equal split; at every step the rail with the larger
    predicted duration (busy offset + sampled transfer time) sheds half
    the current step's bytes to the other rail, "repeated until a split
    ratio where both transfer durations are equivalent is found"
    (within ``tolerance`` µs).

    A boundary driven to one end means the message should not be split at
    all — one rail gets everything (the Fig. 2 discard case).
    """
    _validate(size, rails)
    if len(rails) != 2:
        raise ConfigurationError(
            f"dichotomy_split handles exactly 2 rails, got {len(rails)}; "
            "use waterfill_split"
        )
    (est_a, off_a), (est_b, off_b) = rails

    def time_a(s: float) -> float:
        return off_a + est_a.transfer_time(s, mode)

    def time_b(s: float) -> float:
        return off_b + est_b.transfer_time(s, mode)

    x = size / 2.0
    step = size / 4.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        ta, tb = time_a(x), time_b(size - x)
        if abs(ta - tb) <= tolerance or step < 0.5:
            break
        if ta > tb:
            x -= step
        else:
            x += step
        step /= 2.0
    x = min(max(x, 0.0), float(size))

    # Degenerate boundaries: sending everything on one rail may beat any
    # split once an offset or a fixed cost dominates.
    candidates = [int(round(x)), 0, size]
    best_sizes, best_completion = None, float("inf")
    for sa in candidates:
        sb = size - sa
        completion = max(
            time_a(sa) if sa > 0 else 0.0,
            time_b(sb) if sb > 0 else 0.0,
        )
        if size == 0:
            completion = 0.0
        if completion < best_completion - 1e-12:
            best_completion = completion
            best_sizes = [sa, sb]
    assert best_sizes is not None
    return SplitResult(
        sizes=best_sizes,
        predicted_times=[time_a(best_sizes[0]), time_b(best_sizes[1])],
        iterations=iterations,
    )


def waterfill_split(
    size: int,
    rails: Sequence[Rail],
    mode: TransferMode,
    tolerance: float = 0.01,
    max_iterations: int = 60,
) -> SplitResult:
    """n-rail equal-completion split via bisection on the completion time.

    For a candidate completion ``T``, each rail can absorb
    ``inverse(T - offset)`` bytes; the smallest ``T`` whose total capacity
    reaches ``size`` is the optimum.  Rails whose fixed costs exceed ``T``
    naturally receive zero bytes — the Fig. 2 discard rule for free.
    """
    _validate(size, rails)
    if size == 0:
        return SplitResult(
            sizes=[0] * len(rails),
            predicted_times=[0.0] * len(rails),
            iterations=0,
        )

    def table(est: NicEstimator):
        return est.eager if mode is TransferMode.EAGER else est.dma

    def capacity(t: float) -> float:
        return sum(
            table(est).inverse(max(0.0, t - off)) for est, off in rails
        )

    # Bracket: lo = cheapest single-byte send; hi = everything on the rail
    # that finishes a full-size transfer earliest.
    lo = min(off for _, off in rails)
    hi = min(off + est.transfer_time(size, mode) for est, off in rails)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if hi - lo <= tolerance:
            break
        mid = (lo + hi) / 2.0
        if capacity(mid) >= size:
            hi = mid
        else:
            lo = mid

    shares = [table(est).inverse(max(0.0, hi - off)) for est, off in rails]
    total = sum(shares)
    if total <= 0:
        # Degenerate: give everything to the earliest-finishing rail.
        best = min(
            range(len(rails)),
            key=lambda i: rails[i][1] + rails[i][0].transfer_time(size, mode),
        )
        sizes = [size if i == best else 0 for i in range(len(rails))]
    else:
        sizes = ratio_split(size, [s / total for s in shares])
    times = [
        off + est.transfer_time(s, mode) if s > 0 else 0.0
        for (est, off), s in zip(rails, sizes)
    ]
    return SplitResult(sizes=sizes, predicted_times=times, iterations=iterations)
