"""Transfer-time estimation from sampled measurements.

Paper §III-C, verbatim: *"First, the strategy accesses the results of the
sampling measurements through structures initialized at the launch of
NewMadeleine.  Second, the sampled sizes that are the closest to the
message size are retrieved, for instance using a logarithm in the case of
power of 2 samples.  Finally, the estimated transfer time is computed by
the mean of a linear interpolation."*

:class:`SampleTable` implements exactly that: log2-indexed bracket lookup
plus linear interpolation, with linear extrapolation beyond the sampled
range.  :class:`NicEstimator` bundles the per-NIC tables (eager curve,
DMA curve, control-packet cost) and derives the rendezvous threshold from
their crossover — the paper notes sampling "can also be used to determine
other parameters such as rendezvous threshold".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.packets import TransferMode
from repro.util.errors import SamplingError


class SampleTable:
    """A sampled (size → time) curve with log-indexed interpolation.

    Sizes must be strictly increasing; powers of two enable the O(1)
    logarithm lookup of the paper, but any strictly increasing grid works
    (binary search fallback).
    """

    def __init__(self, sizes: Sequence[int], times: Sequence[float]) -> None:
        if len(sizes) != len(times):
            raise SamplingError(
                f"{len(sizes)} sizes vs {len(times)} times"
            )
        if len(sizes) < 2:
            raise SamplingError("a sample table needs at least two points")
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.times = np.asarray(times, dtype=np.float64)
        if np.any(np.diff(self.sizes) <= 0):
            raise SamplingError(f"sizes not strictly increasing: {sizes}")
        if np.any(self.times < 0):
            raise SamplingError("negative sampled time")
        # Detect the pure power-of-two grid for the O(1) log path.
        logs = np.log2(self.sizes)
        self._pow2 = bool(
            np.allclose(logs, np.round(logs)) and np.all(np.diff(np.round(logs)) == 1)
        )
        self._log0 = int(round(logs[0])) if self._pow2 else 0

    def __len__(self) -> int:
        return len(self.sizes)

    @property
    def min_size(self) -> int:
        return int(self.sizes[0])

    @property
    def max_size(self) -> int:
        return int(self.sizes[-1])

    def _bracket(self, size: float) -> int:
        """Index ``i`` such that sizes[i] <= size < sizes[i+1] (clamped)."""
        if self._pow2:
            i = int(math.floor(math.log2(size))) - self._log0 if size > 0 else 0
        else:
            i = int(np.searchsorted(self.sizes, size, side="right")) - 1
        return max(0, min(i, len(self.sizes) - 2))

    def __call__(self, size: float) -> float:
        """Estimated time for ``size`` bytes (linear inter-/extrapolation).

        Results are clamped to be non-negative (extrapolating the first
        segment below the smallest sample could otherwise go negative).
        """
        if size < 0:
            raise SamplingError(f"negative size: {size}")
        i = self._bracket(max(size, 1.0))
        s0, s1 = self.sizes[i], self.sizes[i + 1]
        t0, t1 = self.times[i], self.times[i + 1]
        t = t0 + (t1 - t0) * (size - s0) / (s1 - s0)
        return max(0.0, float(t))

    def inverse(self, time: float) -> float:
        """Largest size transferable within ``time`` (for waterfilling).

        Requires a non-decreasing curve.  Returns 0 when even the
        extrapolated zero-size transfer exceeds ``time``, and extrapolates
        past the largest sample using the final segment's rate.
        """
        if time <= self(0):
            return 0.0
        if time >= float(self.times[-1]):
            # extrapolate along the last segment
            s0, s1 = self.sizes[-2], self.sizes[-1]
            t0, t1 = self.times[-2], self.times[-1]
            slope = (t1 - t0) / (s1 - s0)
            if slope <= 0:
                return float(self.sizes[-1])
            return float(s1 + (time - t1) / slope)
        i = int(np.searchsorted(self.times, time, side="right")) - 1
        i = max(0, min(i, len(self.times) - 2))
        t0, t1 = self.times[i], self.times[i + 1]
        s0, s1 = self.sizes[i], self.sizes[i + 1]
        if t1 == t0:
            return float(s1)
        return float(s0 + (s1 - s0) * (time - t0) / (t1 - t0))

    def as_dict(self) -> Dict[str, List[float]]:
        return {"sizes": self.sizes.tolist(), "times": self.times.tolist()}

    @classmethod
    def from_dict(cls, d: Dict[str, List[float]]) -> "SampleTable":
        return cls([int(s) for s in d["sizes"]], d["times"])


class NicEstimator:
    """Everything the strategy knows about one NIC, learned by sampling.

    Parameters
    ----------
    name:
        Technology/NIC label (matches ``Nic.profile.name``).
    eager:
        Sampled one-way eager times (up to the driver's eager limit).
    dma:
        Sampled one-way rendezvous *data* times (handshake excluded).
    control_oneway:
        Measured one-way control-packet time.
    eager_limit:
        Driver capability bound on eager sizes.
    """

    def __init__(
        self,
        name: str,
        eager: SampleTable,
        dma: SampleTable,
        control_oneway: float,
        eager_limit: int,
    ) -> None:
        if control_oneway < 0:
            raise SamplingError(f"negative control time: {control_oneway}")
        self.name = name
        self.eager = eager
        self.dma = dma
        self.control_oneway = control_oneway
        self.eager_limit = eager_limit

    def __repr__(self) -> str:
        return (
            f"<NicEstimator {self.name}: eager {len(self.eager)} pts, "
            f"dma {len(self.dma)} pts, rdv threshold {self.rdv_threshold()}B>"
        )

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def transfer_time(self, size: int, mode: TransferMode) -> float:
        """Predicted one-way time of a ``size``-byte chunk in ``mode``.

        For rendezvous this is the *data* time — the per-message handshake
        is accounted once by the caller, not per chunk.
        """
        if mode is TransferMode.EAGER:
            return self.eager(size)
        return self.dma(size)

    def rdv_handshake(self) -> float:
        """Predicted REQ+ACK cost (two control one-ways)."""
        return 2.0 * self.control_oneway

    def best_mode(self, size: int) -> TransferMode:
        """Cheapest protocol for a full message of ``size`` bytes."""
        if size > self.eager_limit:
            return TransferMode.RENDEZVOUS
        eager_t = self.eager(size)
        rdv_t = self.rdv_handshake() + self.dma(size)
        return TransferMode.EAGER if eager_t <= rdv_t else TransferMode.RENDEZVOUS

    def rdv_threshold(self) -> int:
        """Smallest size where rendezvous beats eager.

        Derived from the sampled curves (paper §III-C's closing remark):
        the grid locates the bracketing power-of-two interval, then an
        integer bisection pins the crossover byte.  Falls back to the
        eager limit when rendezvous never wins within the eager range.
        """
        prev = int(self.eager.sizes[0])
        first_rdv: Optional[int] = None
        for size in self.eager.sizes:
            s = min(int(size), self.eager_limit)
            if self.best_mode(s) is TransferMode.RENDEZVOUS:
                first_rdv = s
                break
            prev = s
            if s == self.eager_limit:
                break
        if first_rdv is None:
            return self.eager_limit
        if first_rdv == prev:
            return first_rdv
        lo, hi = prev, first_rdv  # eager wins at lo, rdv wins at hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.best_mode(mid) is TransferMode.RENDEZVOUS:
                hi = mid
            else:
                lo = mid
        return hi

    def plateau_bandwidth(self) -> float:
        """Sampled large-message bandwidth (B/µs) — what a static
        OpenMPI-style ratio strategy uses as each rail's weight."""
        size = self.dma.max_size
        t = self.dma(size)
        if t <= 0:
            raise SamplingError(f"{self.name}: degenerate dma curve")
        return size / t

    # ------------------------------------------------------------------ #
    # (de)serialization — the paper persists sampling results at launch
    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "eager": self.eager.as_dict(),
            "dma": self.dma.as_dict(),
            "control_oneway": self.control_oneway,
            "eager_limit": self.eager_limit,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "NicEstimator":
        return cls(
            name=d["name"],
            eager=SampleTable.from_dict(d["eager"]),
            dma=SampleTable.from_dict(d["dma"]),
            control_oneway=float(d["control_oneway"]),
            eager_limit=int(d["eager_limit"]),
        )
