"""Transfer-time estimation from sampled measurements.

Paper §III-C, verbatim: *"First, the strategy accesses the results of the
sampling measurements through structures initialized at the launch of
NewMadeleine.  Second, the sampled sizes that are the closest to the
message size are retrieved, for instance using a logarithm in the case of
power of 2 samples.  Finally, the estimated transfer time is computed by
the mean of a linear interpolation."*

:class:`SampleTable` implements exactly that: log2-indexed bracket lookup
plus linear interpolation, with linear extrapolation beyond the sampled
range.  :class:`NicEstimator` bundles the per-NIC tables (eager curve,
DMA curve, control-packet cost) and derives the rendezvous threshold from
their crossover — the paper notes sampling "can also be used to determine
other parameters such as rendezvous threshold".

Performance notes
-----------------
``SampleTable.__call__`` is the innermost call of every split decision
(40–60 invocations per planned message), so the scalar path is pure
Python over plain lists — numpy scalar indexing costs ~20× a list index.
The numpy arrays are kept for the bulk :meth:`SampleTable.batch` path and
for external analysis code.  Both paths evaluate the *same* IEEE-754
expression, so they agree bitwise — asserted by the test suite.

:class:`NicEstimator` is immutable after construction (enforced via
``__setattr__``), which makes its derived quantities — ``rdv_threshold``,
``plateau_bandwidth``, per-``(size, mode)`` transfer times — safe to
memoize forever.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packets import TransferMode
from repro.util.errors import SamplingError

#: cap on the per-estimator (size, mode) memo before it is reset wholesale
_TRANSFER_MEMO_LIMIT = 65_536


class SampleTable:
    """A sampled (size → time) curve with log-indexed interpolation.

    Sizes must be strictly increasing; powers of two enable the O(1)
    logarithm lookup of the paper, but any strictly increasing grid works
    (binary search fallback).
    """

    def __init__(self, sizes: Sequence[int], times: Sequence[float]) -> None:
        if len(sizes) != len(times):
            raise SamplingError(
                f"{len(sizes)} sizes vs {len(times)} times"
            )
        if len(sizes) < 2:
            raise SamplingError("a sample table needs at least two points")
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.times = np.asarray(times, dtype=np.float64)
        if np.any(np.diff(self.sizes) <= 0):
            raise SamplingError(f"sizes not strictly increasing: {sizes}")
        if np.any(self.times < 0):
            raise SamplingError("negative sampled time")
        # Detect the pure power-of-two grid for the O(1) log path.
        logs = np.log2(self.sizes)
        self._pow2 = bool(
            np.allclose(logs, np.round(logs)) and np.all(np.diff(np.round(logs)) == 1)
        )
        self._log0 = int(round(logs[0])) if self._pow2 else 0
        # Scalar fast path: plain Python lists (and per-segment slopes for
        # the extrapolation in :meth:`inverse`).  Indexing a list of floats
        # avoids the numpy-scalar boxing that dominates per-call cost.
        self._sizes_list: List[float] = self.sizes.tolist()
        self._times_list: List[float] = self.times.tolist()
        self._last_segment = len(self._sizes_list) - 2
        self._slopes: List[float] = [
            (self._times_list[i + 1] - self._times_list[i])
            / (self._sizes_list[i + 1] - self._sizes_list[i])
            for i in range(len(self._sizes_list) - 1)
        ]

    def __len__(self) -> int:
        return len(self._sizes_list)

    @property
    def min_size(self) -> int:
        return int(self._sizes_list[0])

    @property
    def max_size(self) -> int:
        return int(self._sizes_list[-1])

    def _bracket(self, size: float) -> int:
        """Index ``i`` such that sizes[i] <= size < sizes[i+1] (clamped)."""
        if self._pow2:
            i = int(math.floor(math.log2(size))) - self._log0 if size > 0 else 0
        else:
            i = bisect_right(self._sizes_list, size) - 1
        last = self._last_segment
        return 0 if i < 0 else (last if i > last else i)

    def __call__(self, size: float) -> float:
        """Estimated time for ``size`` bytes (linear inter-/extrapolation).

        Results are clamped to be non-negative (extrapolating the first
        segment below the smallest sample could otherwise go negative).
        """
        if size < 0:
            raise SamplingError(f"negative size: {size}")
        i = self._bracket(size if size > 1.0 else 1.0)
        s0 = self._sizes_list[i]
        s1 = self._sizes_list[i + 1]
        t0 = self._times_list[i]
        t1 = self._times_list[i + 1]
        t = t0 + (t1 - t0) * (size - s0) / (s1 - s0)
        return t if t > 0.0 else 0.0

    def batch(self, sizes: Sequence[float]) -> np.ndarray:
        """Vectorized estimates for an array of sizes (bulk analysis path).

        Evaluates the identical interpolation expression as the scalar
        ``__call__``, element-wise over numpy arrays; the two paths agree
        bitwise on every input.
        """
        arr = np.asarray(sizes, dtype=np.float64)
        if np.any(arr < 0):
            raise SamplingError("negative size in batch")
        idx = np.clip(
            np.searchsorted(self.sizes, np.maximum(arr, 1.0), side="right") - 1,
            0,
            self._last_segment,
        )
        s0, s1 = self.sizes[idx], self.sizes[idx + 1]
        t0, t1 = self.times[idx], self.times[idx + 1]
        return np.maximum(0.0, t0 + (t1 - t0) * (arr - s0) / (s1 - s0))

    def inverse_batch(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`inverse` for an array of target times.

        Element-for-element the same IEEE-754 expressions as the scalar
        path (same operand order, same clamps), so the two agree bitwise
        — the waterfill solver can price many completion candidates in
        one call without perturbing a single planned byte.
        """
        arr = np.asarray(times, dtype=np.float64)
        t, s = self.times, self.sizes
        zero_time = self(0)
        idx = np.clip(
            np.searchsorted(t, arr, side="right") - 1, 0, self._last_segment
        )
        t0, t1 = t[idx], t[idx + 1]
        s0, s1 = s[idx], s[idx + 1]
        flat = t1 == t0
        denom = np.where(flat, 1.0, t1 - t0)
        # Near-flat (but not exactly flat) segments can overflow to inf
        # in the unselected where-branch; the scalar path reaches the
        # same inf without warning, so silence only the warning.
        with np.errstate(over="ignore"):
            interp = np.where(flat, s1, s0 + (s1 - s0) * (arr - t0) / denom)
        # Last-segment extrapolation, exactly as the scalar branch.
        slope = self._slopes[-1]
        extrapolated = (
            np.full_like(arr, s[-1])
            if slope <= 0
            else s[-1] + (arr - t[-1]) / slope
        )
        out = np.where(arr >= t[-1], extrapolated, interp)
        return np.where(arr <= zero_time, 0.0, out)

    def inverse(self, time: float) -> float:
        """Largest size transferable within ``time`` (for waterfilling).

        Requires a non-decreasing curve.  Returns 0 when even the
        extrapolated zero-size transfer exceeds ``time``, and extrapolates
        past the largest sample using the final segment's rate.
        """
        times = self._times_list
        sizes = self._sizes_list
        if time <= self(0):
            return 0.0
        if time >= times[-1]:
            # extrapolate along the last segment
            slope = self._slopes[-1]
            if slope <= 0:
                return sizes[-1]
            return sizes[-1] + (time - times[-1]) / slope
        i = bisect_right(times, time) - 1
        last = self._last_segment
        i = 0 if i < 0 else (last if i > last else i)
        t0, t1 = times[i], times[i + 1]
        s0, s1 = sizes[i], sizes[i + 1]
        if t1 == t0:
            return s1
        return s0 + (s1 - s0) * (time - t0) / (t1 - t0)

    def blend(self, fresh: "SampleTable", weight: float) -> "SampleTable":
        """Exponentially blend a fresh curve into this one.

        Each grid point of *this* table moves ``weight`` of the way
        towards the fresh curve (evaluated at the same size, so the
        grids need not match)::

            t_new[i] = (1 - weight) * t_old[i] + weight * fresh(size[i])

        The result is forced monotonic non-decreasing with a running
        max: interpolating two independently-noisy curves can invert a
        band edge (t[i+1] < t[i]), which would break ``inverse`` (the
        waterfill solver) and let the dichotomy prefer *larger* chunks
        on a slower rail.  The clamp only ever raises points, so blended
        estimates stay conservative.
        """
        if not 0.0 <= weight <= 1.0:
            raise SamplingError(f"blend weight {weight} outside [0, 1]")
        keep = 1.0 - weight
        # One vectorized pass over the grid: fresh.batch is bit-equal to
        # per-point fresh(s) calls, and scalar multiply-add over float64
        # is the identical IEEE expression either way — re-sampling got
        # cheaper without moving a blended point by one ulp.
        times = (keep * self.times + weight * fresh.batch(self.sizes)).tolist()
        running = 0.0
        for i, t in enumerate(times):
            if t < running:
                times[i] = running
            else:
                running = t
        return SampleTable([int(s) for s in self._sizes_list], times)

    def as_dict(self) -> Dict[str, List[float]]:
        return {"sizes": self.sizes.tolist(), "times": self.times.tolist()}

    @classmethod
    def from_dict(cls, d: Dict[str, List[float]]) -> "SampleTable":
        return cls([int(s) for s in d["sizes"]], d["times"])


class NicEstimator:
    """Everything the strategy knows about one NIC, learned by sampling.

    Immutable after construction: attribute assignment raises, which is
    what licenses the internal memoization (``rdv_threshold``,
    ``plateau_bandwidth`` and the per-``(size, mode)`` transfer-time
    cache are computed at most once and never invalidated).

    Parameters
    ----------
    name:
        Technology/NIC label (matches ``Nic.profile.name``).
    eager:
        Sampled one-way eager times (up to the driver's eager limit).
    dma:
        Sampled one-way rendezvous *data* times (handshake excluded).
    control_oneway:
        Measured one-way control-packet time.
    eager_limit:
        Driver capability bound on eager sizes.
    """

    def __init__(
        self,
        name: str,
        eager: SampleTable,
        dma: SampleTable,
        control_oneway: float,
        eager_limit: int,
    ) -> None:
        if control_oneway < 0:
            raise SamplingError(f"negative control time: {control_oneway}")
        self.name = name
        self.eager = eager
        self.dma = dma
        self.control_oneway = control_oneway
        self.eager_limit = eager_limit
        # Memoized derivations (estimators are immutable, so these never
        # need invalidation).  The transfer memo is LRU-style in spirit:
        # bounded, reset wholesale on overflow — sweeps reuse a few dozen
        # distinct sizes, so the bound is never hit in practice.
        self._rdv_threshold_cache: Optional[int] = None
        self._plateau_cache: Optional[float] = None
        self._transfer_memo: Dict[Tuple[float, TransferMode], float] = {}
        self._mode_memo: Dict[float, TransferMode] = {}
        self._frozen = True

    def __setattr__(self, attr: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                f"NicEstimator is immutable after construction "
                f"(tried to set {attr!r}); build a new estimator instead"
            )
        object.__setattr__(self, attr, value)

    def __repr__(self) -> str:
        return (
            f"<NicEstimator {self.name}: eager {len(self.eager)} pts, "
            f"dma {len(self.dma)} pts, rdv threshold {self.rdv_threshold()}B>"
        )

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def transfer_time(self, size: int, mode: TransferMode) -> float:
        """Predicted one-way time of a ``size``-byte chunk in ``mode``.

        For rendezvous this is the *data* time — the per-message handshake
        is accounted once by the caller, not per chunk.

        Memoized per ``(size, mode)``: split solvers re-evaluate the same
        boundary candidates dozens of times per message.
        """
        memo = self._transfer_memo
        key = (size, mode)
        t = memo.get(key)
        if t is None:
            if mode is TransferMode.EAGER:
                t = self.eager(size)
            else:
                t = self.dma(size)
            if len(memo) >= _TRANSFER_MEMO_LIMIT:
                memo.clear()
            memo[key] = t
        return t

    def transfer_times(self, sizes: Sequence[float], mode: TransferMode) -> np.ndarray:
        """Vectorized :meth:`transfer_time` over an array of sizes.

        One numpy pass through the mode's sample table instead of a
        Python call per size; bit-equal to the scalar path on every
        element (``SampleTable.batch`` evaluates the identical IEEE-754
        expression).  Bypasses the scalar memo — bulk pricing of dozens
        of candidate chunk sizes is faster vectorized than memoized.
        """
        table = self.eager if mode is TransferMode.EAGER else self.dma
        return table.batch(sizes)

    def rdv_handshake(self) -> float:
        """Predicted REQ+ACK cost (two control one-ways)."""
        return 2.0 * self.control_oneway

    def best_mode(self, size: int) -> TransferMode:
        """Cheapest protocol for a full message of ``size`` bytes."""
        memo = self._mode_memo
        mode = memo.get(size)
        if mode is None:
            if size > self.eager_limit:
                mode = TransferMode.RENDEZVOUS
            else:
                eager_t = self.eager(size)
                rdv_t = self.rdv_handshake() + self.dma(size)
                mode = (
                    TransferMode.EAGER
                    if eager_t <= rdv_t
                    else TransferMode.RENDEZVOUS
                )
            if len(memo) >= _TRANSFER_MEMO_LIMIT:
                memo.clear()
            memo[size] = mode
        return mode

    def rdv_threshold(self) -> int:
        """Smallest size where rendezvous beats eager.

        Derived from the sampled curves (paper §III-C's closing remark):
        the grid locates the bracketing power-of-two interval, then an
        integer bisection pins the crossover byte.  Falls back to the
        eager limit when rendezvous never wins within the eager range.

        Computed once and cached — the grid scan plus bisection is ~60
        estimator calls, and even ``__repr__`` needs the value.
        """
        cached = self._rdv_threshold_cache
        if cached is None:
            cached = self._compute_rdv_threshold()
            object.__setattr__(self, "_rdv_threshold_cache", cached)
        return cached

    def _compute_rdv_threshold(self) -> int:
        prev = int(self.eager.sizes[0])
        first_rdv: Optional[int] = None
        for size in self.eager.sizes:
            s = min(int(size), self.eager_limit)
            if self.best_mode(s) is TransferMode.RENDEZVOUS:
                first_rdv = s
                break
            prev = s
            if s == self.eager_limit:
                break
        if first_rdv is None:
            return self.eager_limit
        if first_rdv == prev:
            return first_rdv
        lo, hi = prev, first_rdv  # eager wins at lo, rdv wins at hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.best_mode(mid) is TransferMode.RENDEZVOUS:
                hi = mid
            else:
                lo = mid
        return hi

    def plateau_bandwidth(self) -> float:
        """Sampled large-message bandwidth (B/µs) — what a static
        OpenMPI-style ratio strategy uses as each rail's weight."""
        cached = self._plateau_cache
        if cached is None:
            size = self.dma.max_size
            t = self.dma(size)
            if t <= 0:
                raise SamplingError(f"{self.name}: degenerate dma curve")
            cached = size / t
            object.__setattr__(self, "_plateau_cache", cached)
        return cached

    # ------------------------------------------------------------------ #
    # online re-calibration (repro.core.calibration)
    # ------------------------------------------------------------------ #

    def blend(self, fresh: "NicEstimator", weight: float) -> "NicEstimator":
        """A *new* estimator moved ``weight`` of the way towards ``fresh``.

        Estimators are immutable (their memos depend on it), so online
        re-sampling composes a fresh instance: each curve goes through
        :meth:`SampleTable.blend` (which enforces monotonic
        non-decreasing times — the band-edge-inversion fix), the control
        cost is linearly interpolated, capability bounds stay put.
        Repeated blending converges exponentially onto the fresh
        profile: after ``n`` resamples the stale component has decayed
        to ``(1 - weight) ** n``.
        """
        if fresh.name != self.name:
            raise SamplingError(
                f"cannot blend estimator {fresh.name!r} into {self.name!r}"
            )
        return NicEstimator(
            name=self.name,
            eager=self.eager.blend(fresh.eager, weight),
            dma=self.dma.blend(fresh.dma, weight),
            control_oneway=(
                (1.0 - weight) * self.control_oneway
                + weight * fresh.control_oneway
            ),
            eager_limit=self.eager_limit,
        )

    # ------------------------------------------------------------------ #
    # (de)serialization — the paper persists sampling results at launch
    # ------------------------------------------------------------------ #

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "eager": self.eager.as_dict(),
            "dma": self.dma.as_dict(),
            "control_oneway": self.control_oneway,
            "eager_limit": self.eager_limit,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "NicEstimator":
        return cls(
            name=d["name"],
            eager=SampleTable.from_dict(d["eager"]),
            dma=SampleTable.from_dict(d["dma"]),
            control_oneway=float(d["control_oneway"]),
            eager_limit=int(d["eager_limit"]),
        )
