"""Rendezvous protocol wire format: control-packet constructors.

The rendezvous handshake (REQ → ACK → DATA chunks) is orchestrated by the
engine; this module centralizes how the protocol's transfers are built so
the payload schema lives in exactly one place.

Payload schema
--------------
Every transfer carries ``payload["message"]`` — the :class:`Message`
object itself.  The simulator is a global observer, so sharing the object
between sender and receiver engines stands in for the (src, msg_id)
matching tables of the real implementation; the receiver-side accounting
fields on the message play the role of the receive-side request state.

Aggregated eager packets instead carry ``payload["messages"]`` — the list
of messages packed into the single wire packet.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.packets import Message
from repro.networks.transfer import Transfer, TransferKind
from repro.util.errors import ProtocolError


def make_rdv_req(msg: Message) -> Transfer:
    """Rendezvous request: announces ``msg`` (size travels as metadata)."""
    return Transfer(
        kind=TransferKind.RDV_REQ,
        size=0,
        msg_id=msg.msg_id,
        tag=msg.tag,
        dst_node=msg.dest,
        payload={"message": msg},
    )


def make_rdv_ack(msg: Message) -> Transfer:
    """Rendezvous acknowledgement: the receive buffer is posted."""
    return Transfer(
        kind=TransferKind.RDV_ACK,
        size=0,
        msg_id=msg.msg_id,
        tag=msg.tag,
        dst_node=msg.src,  # the acknowledgement travels back to the sender
        payload={"message": msg},
    )


def make_rdv_chunks(msg: Message, sizes: Sequence[int]) -> List[Transfer]:
    """Rendezvous data chunks, one per rail, offsets precomputed."""
    if sum(sizes) != msg.size:
        raise ProtocolError(
            f"msg {msg.msg_id}: chunks {list(sizes)} sum to {sum(sizes)}, "
            f"message is {msg.size}B"
        )
    if any(s <= 0 for s in sizes):
        raise ProtocolError(f"msg {msg.msg_id}: non-positive chunk in {list(sizes)}")
    chunks: List[Transfer] = []
    offset = 0
    for i, s in enumerate(sizes):
        chunks.append(
            Transfer(
                kind=TransferKind.RDV_DATA,
                size=s,
                msg_id=msg.msg_id,
                tag=msg.tag,
                dst_node=msg.dest,
                chunk_index=i,
                chunk_count=len(sizes),
                offset=offset,
                payload={"message": msg},
            )
        )
        offset += s
    return chunks


def make_eager_chunks(msg: Message, sizes: Sequence[int]) -> List[Transfer]:
    """Eager chunks (multicore split), one per rail."""
    if sum(sizes) != msg.size:
        raise ProtocolError(
            f"msg {msg.msg_id}: chunks {list(sizes)} sum to {sum(sizes)}, "
            f"message is {msg.size}B"
        )
    if any(s < 0 for s in sizes) or (any(s == 0 for s in sizes) and msg.size > 0):
        raise ProtocolError(f"msg {msg.msg_id}: bad chunk in {list(sizes)}")
    chunks: List[Transfer] = []
    offset = 0
    for i, s in enumerate(sizes):
        chunks.append(
            Transfer(
                kind=TransferKind.EAGER,
                size=s,
                msg_id=msg.msg_id,
                tag=msg.tag,
                dst_node=msg.dest,
                chunk_index=i,
                chunk_count=len(sizes),
                offset=offset,
                payload={"message": msg},
            )
        )
        offset += s
    return chunks


def make_aggregated_eager(msgs: Sequence[Message]) -> Transfer:
    """One wire packet carrying several whole messages (same destination)."""
    if not msgs:
        raise ProtocolError("aggregating zero messages")
    dests = {m.dest for m in msgs}
    if len(dests) != 1:
        raise ProtocolError(f"aggregating messages to different nodes: {dests}")
    total = sum(m.size for m in msgs)
    return Transfer(
        kind=TransferKind.EAGER,
        size=total,
        msg_id=msgs[0].msg_id,
        tag=msgs[0].tag,
        dst_node=msgs[0].dest,
        aggregated_ids=tuple(m.msg_id for m in msgs),
        payload={"messages": list(msgs)},
    )
