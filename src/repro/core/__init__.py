"""NewMadeleine: the multirail communication engine (the paper's contribution).

Layered exactly as the paper's Fig. 5:

* **application layer** — :class:`~repro.core.engine.NmadEngine` exposes
  ``isend``/``post_recv``; the application enqueues packets and returns to
  computing;
* **optimizer/scheduler layer** — :class:`~repro.core.scheduler.OptimizerScheduler`
  holds the waiting-pack lists and invokes the pluggable
  :class:`~repro.core.strategies.Strategy` at the paper's three moments:
  when a NIC becomes idle, when a rendezvous request arrives, and just
  before an eager emission (§III-B);
* **transfer layer** — the NIC pipelines of :mod:`repro.networks`, driven
  through :mod:`repro.pioman`.

Supporting subsystems: :mod:`~repro.core.sampling` (measure each NIC at
powers of two), :mod:`~repro.core.estimator` (log-indexed linear
interpolation), :mod:`~repro.core.prediction` (NIC idle prediction and
rail selection, Fig. 2), :mod:`~repro.core.split` (dichotomy split-ratio
search, Fig. 1c).
"""

from repro.core.packets import Message, MessageStatus, TransferMode
from repro.core.estimator import NicEstimator, SampleTable
from repro.core.sampling import NetworkSampler, NicSample, ProfileStore
from repro.core.prediction import CompletionPredictor, RailPlan
from repro.core.split import dichotomy_split, waterfill_split, SplitResult
from repro.core.engine import NmadEngine
from repro.core.scheduler import OptimizerScheduler
from repro.core.stats import EngineStats, cluster_report, engine_stats
from repro.core.strategies import (
    Strategy,
    SingleRailStrategy,
    RoundRobinStrategy,
    GreedyStrategy,
    AggregateStrategy,
    IsoSplitStrategy,
    StaticRatioStrategy,
    HeteroSplitStrategy,
    MulticoreSplitStrategy,
    AdaptiveStrategy,
    strategy_registry,
    make_strategy,
)

__all__ = [
    "Message",
    "MessageStatus",
    "TransferMode",
    "NicEstimator",
    "SampleTable",
    "NetworkSampler",
    "NicSample",
    "ProfileStore",
    "CompletionPredictor",
    "RailPlan",
    "dichotomy_split",
    "waterfill_split",
    "SplitResult",
    "NmadEngine",
    "OptimizerScheduler",
    "EngineStats",
    "engine_stats",
    "cluster_report",
    "Strategy",
    "SingleRailStrategy",
    "RoundRobinStrategy",
    "GreedyStrategy",
    "AggregateStrategy",
    "IsoSplitStrategy",
    "StaticRatioStrategy",
    "HeteroSplitStrategy",
    "MulticoreSplitStrategy",
    "AdaptiveStrategy",
    "strategy_registry",
    "make_strategy",
]
