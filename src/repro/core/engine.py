"""NmadEngine: the NewMadeleine communication engine, all layers wired.

One engine per node.  The application layer API is ``isend`` /
``post_recv``; everything below (mode choice, aggregation, splitting,
multicore offload, rendezvous) is delegated to the strategy plug-in and
the substrates.

Measurement semantics
---------------------
``Message.done`` triggers when the *receiver* finished processing the
last chunk.  Sender and receiver live in one simulator, so this global
observation is exact — it replaces the clock-synchronization/ping-pong-
halving gymnastics of real-testbed measurements.

Fault awareness (see ``repro.faults`` and ``docs/faults.md``)
-------------------------------------------------------------
Down rails are excluded from planning; transfers aborted by a NIC-down
event are re-planned 1:1 onto surviving rails (same offset and size, so
receiver-side chunk accounting never changes).  With a resilience
``timeout`` configured, a per-message watchdog detects silently lost
packets (drop rules, deliveries into a dead NIC, stalled rendezvous
handshakes) and retries them with bounded exponential backoff; when the
budget runs out, the message finishes with a :class:`DegradedSend`
outcome instead of hanging.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.estimator import NicEstimator
from repro.core.calibration import NULL_CALIBRATION
from repro.core.invariants import NULL_INVARIANTS, InvariantMonitor
from repro.core.packets import (
    DegradedSend,
    Message,
    MessageStatus,
    RecvHandle,
    TransferMode,
)
from repro.core.prediction import CompletionPredictor
from repro.core.rendezvous import (
    make_aggregated_eager,
    make_eager_chunks,
    make_rdv_ack,
    make_rdv_chunks,
    make_rdv_req,
)
from repro.core.scheduler import OptimizerScheduler
from repro.core.strategies.base import Strategy
from repro.hardware.core import Core
from repro.hardware.machine import Machine
from repro.networks.nic import Nic
from repro.networks.transfer import Transfer, TransferKind
from repro.obs import NULL_OBS, Observability
from repro.pioman.progress import PiomanEngine
from repro.pioman.requests import SendRequest
from repro.simtime import SimEvent
from repro.threading.marcel import MarcelScheduler
from repro.util.errors import ConfigurationError, ProtocolError, SchedulingError
from repro.util.units import parse_size, parse_time

_TERMINAL = (MessageStatus.COMPLETE, MessageStatus.DEGRADED)


@dataclass(frozen=True)
class RetryRecord:
    """One replacement transfer issued for a lost/aborted one."""

    time: float
    msg_id: int
    kind: str
    old_transfer: int
    new_transfer: int
    rail: str
    reason: str  # "nic-down" | "timeout" | "recovery"


class NmadEngine:
    """The multirail communication engine for one node.

    Parameters
    ----------
    machine:
        The node (cores + NICs must already be wired).
    strategy:
        The optimization strategy plug-in.
    estimators:
        Sampled per-technology profiles (from
        :class:`~repro.core.sampling.ProfileStore`); required by the
        sampling-based strategies.
    app_core_id:
        The core the application (and therefore the strategy and the
        default submissions) runs on.
    pioman:
        Progress engine; built automatically when omitted.  Its poll core
        defaults to the app core — the single-threaded configuration of
        the paper's benchmarks.
    multicore_rx:
        Forwarded to the auto-built PIOMan engine: let receive-side
        processing spill onto idle cores (the paper's future-work
        improvement; see :class:`~repro.pioman.PiomanEngine`).
    timeout:
        Per-message watchdog interval (µs, or a ``"500us"``/``"2ms"``
        string).  ``None`` (default) disables timeout-based loss
        detection entirely — healthy runs are byte-identical with or
        without the fault subsystem compiled in.
    max_retries:
        Retry budget per message; exhausting it yields a
        :class:`DegradedSend` outcome instead of a hang.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff of the watchdog re-check after a retry:
        ``delay = min(backoff_max, backoff_base * backoff_factor**n)``.
        ``backoff_base`` defaults to ``timeout``; ``backoff_max`` to 32x.
    obs:
        Shared :class:`~repro.obs.Observability` bundle (tracer, metrics,
        accuracy telemetry).  ``None`` (default) uses the no-op singleton
        — every hook site then costs a single attribute read.
    """

    def __init__(
        self,
        machine: Machine,
        strategy: Strategy,
        estimators: Optional[Dict[str, NicEstimator]] = None,
        app_core_id: int = 0,
        pioman: Optional[PiomanEngine] = None,
        marcel: Optional[MarcelScheduler] = None,
        multicore_rx: bool = False,
        timeout: Union[float, str, None] = None,
        max_retries: int = 8,
        backoff_base: Union[float, str, None] = None,
        backoff_factor: float = 2.0,
        backoff_max: Union[float, str, None] = None,
        obs: Optional[Observability] = None,
        invariants: Optional[InvariantMonitor] = None,
    ) -> None:
        if not machine.nics:
            raise ConfigurationError(f"{machine.name} has no NICs")
        for nic in machine.nics:
            if nic.wire is None:
                raise ConfigurationError(f"{nic.qualified_name} is not wired")
        self.machine = machine
        self.sim = machine.sim
        self.app_core: Core = machine.cores[app_core_id]
        #: shared observability bundle (the null singleton when off);
        #: installed onto this node's PIOMan engine and NICs below
        self.obs = obs if obs is not None else NULL_OBS
        #: shared invariant monitor (null singleton when off) — same
        #: guarded-hook pattern as ``obs``; see repro.core.invariants
        self.inv = invariants if invariants is not None else NULL_INVARIANTS
        #: shared calibration controller (null singleton when off) —
        #: installed post-build by install_calibration; unlike obs/inv,
        #: an enabled controller deliberately influences planning
        self.calib = NULL_CALIBRATION
        self.marcel = marcel or MarcelScheduler(machine)
        self.pioman = pioman or PiomanEngine(
            machine,
            marcel=self.marcel,
            poll_core_id=app_core_id,
            multicore_rx=multicore_rx,
        )
        self.pioman.bind()
        self.pioman.rx_dispatch = self._on_transfer
        self.pioman.obs = self.obs
        self.pioman.inv = self.inv
        self.predictor = (
            CompletionPredictor(estimators) if estimators else None
        )
        if self.predictor is not None:
            self.predictor.bind_obs(self.obs, machine.name)
        self.scheduler = OptimizerScheduler(self)
        self.strategy = strategy
        strategy.attach(self)
        self._routes: Dict[str, List[Nic]] = defaultdict(list)
        for nic in machine.nics:
            for peer in nic.wire.peers_of(nic):
                if nic not in self._routes[peer.machine.name]:
                    self._routes[peer.machine.name].append(nic)
            nic.idle_listeners.append(self.scheduler.on_nic_idle)
            nic.down_listeners.append(self._on_nic_down)
            nic.up_listeners.append(self._on_nic_up)
            nic.obs = self.obs
            nic.inv = self.inv
        # receive-side state
        self._posted_recvs: List[RecvHandle] = []
        self._unexpected: List[Message] = []
        self._pending_rdv: List[Tuple[Message, Nic]] = []
        # resilience knobs (None timeout = watchdogs off)
        self.timeout = None if timeout is None else parse_time(timeout)
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(f"resilience timeout must be > 0: {timeout}")
        if max_retries < 0:
            raise ConfigurationError(f"negative max_retries: {max_retries}")
        self.max_retries = max_retries
        self.backoff_factor = float(backoff_factor)
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff factor must be >= 1, got {backoff_factor}"
            )
        self.backoff_base = (
            parse_time(backoff_base)
            if backoff_base is not None
            else (self.timeout or 0.0)
        )
        self.backoff_max = (
            parse_time(backoff_max)
            if backoff_max is not None
            else 32.0 * (self.timeout or 0.0)
        )
        if self.timeout is not None:
            # A zero backoff would re-fire the watchdog in the same
            # instant forever; refuse outright.
            if self.backoff_base <= 0:
                raise ConfigurationError(
                    f"backoff_base must be > 0 with a timeout: {backoff_base}"
                )
            if self.backoff_max < self.backoff_base:
                raise ConfigurationError(
                    f"backoff_max ({backoff_max}) below backoff_base"
                )
        # fault state
        self._watchdogs: Dict[int, object] = {}  # msg_id -> ScheduledEvent
        self._stranded: List[Transfer] = []  # lost, no up rail to retry on
        self._stalled_rdv_data: List[Message] = []  # ACK'd, all rails down
        self.retry_log: List[RetryRecord] = []
        # counters
        self.messages_sent = 0
        self.messages_completed = 0
        self.messages_degraded = 0
        self.retries_issued = 0
        self.bytes_sent = 0
        #: receiver-side deliveries ignored because their chunk interval
        #: was already accounted (a retry racing its late original)
        self.duplicates_suppressed = 0
        #: in-flight deliveries cancelled because a retry superseded them
        self.deliveries_cancelled = 0
        #: every message this engine ever sent (drain accounting)
        self.sent_log: List[Message] = []

    def __repr__(self) -> str:
        return (
            f"<NmadEngine {self.machine.name} strategy={self.strategy.name} "
            f"rails={[n.name for n in self.machine.nics]}>"
        )

    # ------------------------------------------------------------------ #
    # application layer API
    # ------------------------------------------------------------------ #

    def isend(self, dest: str, size: Union[int, str], tag: int = 0) -> Message:
        """Enqueue a send and return immediately (the application keeps
        computing; the scheduler activates at the end of the instant).

        ``size`` accepts plain bytes or ``"4K"``-style strings — this is
        the one size-parsing choke point; Session and Communicator just
        forward.
        """
        size = parse_size(size)
        if dest not in self._routes:
            raise ConfigurationError(
                f"no rail from {self.machine.name} to {dest!r}; reachable: "
                f"{sorted(self._routes)}"
            )
        msg = Message(src=self.machine.name, dest=dest, size=size, tag=tag)
        msg.done = SimEvent(self.sim, name=f"msg{msg.msg_id}.done")
        msg.t_post = self.sim.now
        if self.sendable(msg):
            msg.mode = self.strategy.choose_mode(msg)
        # else: every rail towards dest is down right now — the mode
        # decision is deferred to the first activation with an up rail
        # (the scheduler backfills it); the watchdog bounds the wait.
        self.messages_sent += 1
        self.bytes_sent += size
        self.sent_log.append(msg)
        if self.inv.on:
            self.inv.on_send(msg)
        obs = self.obs
        if obs.on:
            node = self.machine.name
            obs.metrics.counter(f"engine.{node}.messages_sent").inc()
            obs.metrics.counter(f"engine.{node}.bytes_sent").inc(size)
            obs.flight.record(
                "send", self.sim.now, node,
                {"msg": msg.msg_id, "dest": dest, "size": size, "tag": tag},
            )
            if obs.tracer.enabled:
                obs.tracer.async_begin(
                    node, "messages", f"msg{msg.msg_id}", msg.msg_id,
                    self.sim.now, cat="message",
                    args={
                        "dest": dest, "size": size, "tag": tag,
                        "mode": msg.mode.value if msg.mode else "deferred",
                    },
                )
        self.scheduler.enqueue(msg)
        if self.timeout is not None:
            self._arm_watchdog(msg, 0, self.timeout, self._progress_of(msg))
        return msg

    def post_recv(
        self, source: Optional[str] = None, tag: Optional[int] = None
    ) -> RecvHandle:
        """Post a receive; its ``done`` event fires with the matched
        message once that message fully arrived."""
        handle = RecvHandle(node=self.machine.name, source=source, tag=tag)
        handle.done = SimEvent(self.sim, name=f"recv@{self.machine.name}")
        for msg in self._unexpected:
            if handle.matches(msg):
                self._unexpected.remove(msg)
                handle.matched = msg
                handle.done.trigger(msg)
                return handle
        self._posted_recvs.append(handle)
        # A rendezvous may have been waiting for exactly this buffer.
        for msg, nic in list(self._pending_rdv):
            if handle.matches(msg):
                self._pending_rdv.remove((msg, nic))
                self._send_rdv_ack(msg, nic)
                break
        return handle

    def cancel_recv(self, handle: RecvHandle) -> bool:
        """Withdraw a posted receive that has not matched yet.

        Returns True when the handle was pending and is now cancelled;
        False when it already matched (the message is the caller's).
        Rendezvous senders waiting on this buffer keep waiting for the
        next matching post — exactly as if the receive had never been
        posted.
        """
        if handle.matched is not None:
            return False
        try:
            self._posted_recvs.remove(handle)
        except ValueError:
            raise ProtocolError(
                f"receive handle was not posted on {self.machine.name}"
            ) from None
        return True

    def rails_to(self, dest: str, msg: Optional[Message] = None) -> List[Nic]:
        """Local *up* NICs wired towards ``dest`` (strategy-facing).

        Down rails are excluded; pass ``msg`` to record why each skipped
        rail was avoided (surfaced by ``trace.explain``).  Raises when no
        rail is up — callers that can wait should check :meth:`sendable`
        first (the out-list scheduler does).
        """
        rails = self._routes.get(dest)
        if not rails:
            raise ConfigurationError(f"no rail towards {dest!r}")
        up = [n for n in rails if n.is_up]
        if msg is not None and len(up) < len(rails):
            for n in rails:
                if not n.is_up:
                    msg.note_rail_avoided(n.qualified_name, "down", self.sim.now)
        if not up:
            raise SchedulingError(
                f"all rails from {self.machine.name} towards {dest!r} are down"
            )
        return up

    def all_rails_to(self, dest: str) -> List[Nic]:
        """Every local NIC wired towards ``dest``, up or not."""
        rails = self._routes.get(dest)
        if not rails:
            raise ConfigurationError(f"no rail towards {dest!r}")
        return list(rails)

    def sendable(self, msg: Message) -> bool:
        """Can ``msg`` be planned right now (any up rail towards dest)?"""
        rails = self._routes.get(msg.dest, ())
        if any(n.is_up for n in rails):
            return True
        msg.note_rail_avoided(
            "all rails", f"down towards {msg.dest}", self.sim.now
        )
        return False

    # ------------------------------------------------------------------ #
    # submission helpers (called by strategies)
    # ------------------------------------------------------------------ #

    def _predict_chunk(self, transfer: Transfer, nic: Nic) -> None:
        """Stamp accuracy-telemetry predictions on an outgoing data chunk.

        Only called when observability or calibration is on (the drift
        loop consumes the same stamps) and a predictor exists.
        Purely passive: the estimator lookups are memoized value lookups
        that change no planning state, so simulated timestamps are
        unmoved with or without the stamps.
        """
        if transfer.kind.is_control:
            return
        mode = (
            TransferMode.RENDEZVOUS
            if transfer.kind is TransferKind.RDV_DATA
            else TransferMode.EAGER
        )
        predictor = self.predictor
        transfer.predicted_time = predictor.planning_transfer_time(
            nic, transfer.size, mode
        )
        transfer.predicted_completion = self.sim.now + predictor.predict(
            nic, transfer.size, mode
        )

    def submit_eager_chunks(
        self,
        msg: Message,
        chunks: Sequence[Tuple[Nic, int]],
        offload: bool = False,
        allow_preempt: bool = True,
    ) -> None:
        """Send ``msg`` as eager chunks, one per (nic, size) pair.

        ``offload=True`` routes the submissions through PIOMan's
        to-be-sent list so idle cores perform the PIO copies in parallel
        (§III-D); otherwise every chunk is posted from the app core.
        """
        self._check_ownership(msg)
        sizes = [s for _, s in chunks]
        transfers = make_eager_chunks(msg, sizes)
        msg.mode = TransferMode.EAGER
        msg.status = MessageStatus.IN_TRANSFER
        msg.expect_chunks(len(chunks))
        msg.rails_used = [nic.qualified_name for nic, _ in chunks]
        msg.chunk_sizes = list(sizes)
        msg.transfers.extend(transfers)
        if (self.obs.on or self.calib.on) and self.predictor is not None:
            for t, (nic, _) in zip(transfers, chunks):
                self._predict_chunk(t, nic)
        if offload and len(chunks) > 1:
            requests = [
                SendRequest(transfer=t, nic=nic)
                for t, (nic, _) in zip(transfers, chunks)
            ]
            self.pioman.register_sends(
                requests, issuing_core=self.app_core, allow_preempt=allow_preempt
            )
        else:
            for t, (nic, _) in zip(transfers, chunks):
                nic.submit(t, self.app_core)

    def submit_aggregated_eager(self, msgs: Sequence[Message], nic: Nic) -> None:
        """Pack several messages into one eager packet on one rail."""
        for m in msgs:
            self._check_ownership(m)
        packet = make_aggregated_eager(msgs)
        if packet.size > nic.profile.eager_limit:
            raise ProtocolError(
                f"aggregated packet of {packet.size}B exceeds "
                f"{nic.profile.name} eager limit"
            )
        ids = [m.msg_id for m in msgs]
        for m in msgs:
            m.mode = TransferMode.EAGER
            m.status = MessageStatus.IN_TRANSFER
            m.expect_chunks(1)
            m.rails_used = [nic.qualified_name]
            m.chunk_sizes = [m.size]
            m.aggregated_with = [i for i in ids if i != m.msg_id]
        # Building the aggregate (iovec entries, or a staging copy without
        # gather/scatter hardware) costs CPU before the post.
        agg_cost = nic.driver.aggregation_cpu_cost(
            [m.size for m in msgs], self.machine.memcpy_rate
        )
        if agg_cost > 0:
            self.app_core.run(agg_cost, label="aggregate")
        for m in msgs:
            m.transfers.append(packet)
        if (self.obs.on or self.calib.on) and self.predictor is not None:
            self._predict_chunk(packet, nic)
        nic.submit(packet, self.app_core)

    def start_rendezvous(self, msg: Message, control_nic: Nic) -> None:
        """Send the RDV_REQ for ``msg`` on ``control_nic``."""
        self._check_ownership(msg)
        msg.mode = TransferMode.RENDEZVOUS
        msg.status = MessageStatus.RDV_REQUESTED
        req = make_rdv_req(msg)
        msg.transfers.append(req)
        control_nic.submit(req, self.app_core)

    # ------------------------------------------------------------------ #
    # receive path (rx_dispatch target; runs after PIOMan charged costs)
    # ------------------------------------------------------------------ #

    def _on_transfer(self, transfer: Transfer, nic: Nic) -> None:
        if self.obs.on:
            self._observe_arrival(transfer, nic)
        calib = self.calib
        if calib.on:
            # Feed the drift loop the same (predicted, actual) pair the
            # accuracy telemetry sees — may trigger an online re-sample
            # (zero simulated time; the probe runs a private simulator).
            calib.observe_transfer(transfer, nic)
        if transfer.kind is TransferKind.EAGER:
            self._on_eager(transfer)
        elif transfer.kind is TransferKind.RDV_REQ:
            self._on_rdv_req(transfer, nic)
        elif transfer.kind is TransferKind.RDV_ACK:
            self._on_rdv_ack(transfer)
        elif transfer.kind is TransferKind.RDV_DATA:
            self._on_rdv_data(transfer)
        else:  # pragma: no cover - exhaustive over TransferKind
            raise ProtocolError(f"unknown transfer kind {transfer.kind}")

    def _observe_arrival(self, transfer: Transfer, nic: Nic) -> None:
        """Record one fully-processed transfer (receiver side, purely
        passive): lifecycle span, counters, prediction-accuracy pairing.

        ``t_complete`` is already stamped (PIOMan's ``_rx_done`` runs
        before the dispatch), so the whole submit→complete interval is
        known here.
        """
        obs = self.obs
        src = transfer.src_node or "?"
        rail = transfer.nic_name or nic.qualified_name
        tr = obs.tracer
        if (
            tr.enabled
            and transfer.t_submit is not None
            and transfer.t_complete is not None
        ):
            # Emit the id-matched pair in one go; the exporter re-sorts
            # by timestamp, so recording both at arrival time is safe.
            lane = f"rail:{rail.split('.')[-1]}"
            span_args = {
                "msg": transfer.msg_id,
                "size": transfer.size,
                "rail": rail,
                "chunk": f"{transfer.chunk_index + 1}/{transfer.chunk_count}",
            }
            tr.async_begin(
                src, lane, transfer.kind.value, transfer.transfer_id,
                transfer.t_submit, cat="transfer", args=span_args,
            )
            tr.async_end(
                src, lane, transfer.kind.value, transfer.transfer_id,
                transfer.t_complete, cat="transfer",
            )
        acc = obs.accuracy
        if (
            acc.enabled
            and transfer.predicted_time is not None
            and transfer.t_complete is not None
        ):
            start = (
                transfer.t_service_start
                if transfer.t_service_start is not None
                else transfer.t_submit
            )
            acc.record(
                rail=rail,
                mode=transfer.kind.value,
                size=transfer.size,
                predicted=transfer.predicted_time,
                actual=transfer.t_complete - start,
                predicted_completion=transfer.predicted_completion,
                actual_completion=transfer.t_complete,
            )

    def _account_delivery(self, msg: Message, transfer: Transfer, nbytes: int) -> None:
        """Receiver-side integrity gate in front of chunk accounting.

        Exactly-once delivery: each (message, chunk interval) is summed
        once, whatever raced — a retry against its late original, a
        superseded transfer whose cancellation came too late, or a
        duplicated handshake.  First arrival wins; later ones are
        suppressed (counted, surfaced to the invariant monitor) instead
        of corrupting the byte accounting.
        """
        inv = self.inv
        if not msg.register_delivery(transfer.chunk_key):
            self.duplicates_suppressed += 1
            obs = self.obs
            if obs.on:
                obs.metrics.counter(
                    f"engine.{self.machine.name}.duplicates_suppressed"
                ).inc()
                obs.flight.record(
                    "duplicate-suppressed", self.sim.now, self.machine.name,
                    {"msg": msg.msg_id, "transfer": transfer.transfer_id},
                )
            if inv.on:
                inv.on_duplicate(msg, transfer, self.sim.now)
            return
        if inv.on:
            inv.on_delivery(msg, transfer, self.sim.now)
        if msg.account_chunk(nbytes):
            self._complete_message(msg)

    def _on_eager(self, transfer: Transfer) -> None:
        if transfer.aggregated_ids:
            for msg in transfer.payload["messages"]:
                self._account_delivery(msg, transfer, msg.size)
            return
        msg: Message = transfer.payload["message"]
        self._account_delivery(msg, transfer, transfer.size)

    def _on_rdv_req(self, transfer: Transfer, nic: Nic) -> None:
        msg: Message = transfer.payload["message"]
        if msg.status is not MessageStatus.RDV_REQUESTED:
            # Stale REQ: the data phase already started (a retried REQ
            # raced its original, or the send was already given up on).
            return
        for handle in self._posted_recvs:
            if handle.matches(msg):
                self._send_rdv_ack(msg, nic)
                return
        # No buffer yet: the rendezvous waits for a matching post_recv.
        # A duplicate REQ (handshake retry) must not enqueue twice.
        if not any(m is msg for m, _ in self._pending_rdv):
            self._pending_rdv.append((msg, nic))

    def _send_rdv_ack(self, msg: Message, nic: Nic) -> None:
        ack = make_rdv_ack(msg)
        msg.transfers.append(ack)
        nic.submit(ack, self.app_core)

    def _on_rdv_ack(self, transfer: Transfer) -> None:
        """Back on the sender: the receiver is ready — plan and push data."""
        msg: Message = transfer.payload["message"]
        if msg.src != self.machine.name:
            raise ProtocolError(
                f"RDV_ACK for msg {msg.msg_id} arrived at {self.machine.name}, "
                f"but the sender is {msg.src}"
            )
        if msg.status is not MessageStatus.RDV_REQUESTED:
            # Duplicate ACK (handshake retry) — the data phase is already
            # planned, or the send was given up on.  One-shot it.
            return
        self._launch_rdv_data(msg)

    def _launch_rdv_data(self, msg: Message) -> None:
        if not self.sendable(msg):
            # Every rail died between REQ and ACK; park the data phase
            # until a recovery event (or let the watchdog give up).
            if msg not in self._stalled_rdv_data:
                self._stalled_rdv_data.append(msg)
            return
        plan = self.strategy.plan_rdv_data(msg)
        msg.status = MessageStatus.IN_TRANSFER
        msg.expect_chunks(len(plan.nics))
        msg.rails_used = [n.qualified_name for n in plan.nics]
        msg.chunk_sizes = list(plan.sizes)
        stamp = (self.obs.on or self.calib.on) and self.predictor is not None
        for t, nic in zip(make_rdv_chunks(msg, plan.sizes), plan.nics):
            msg.transfers.append(t)
            if stamp:
                self._predict_chunk(t, nic)
            nic.submit(t, self.app_core)

    def _on_rdv_data(self, transfer: Transfer) -> None:
        msg: Message = transfer.payload["message"]
        self._account_delivery(msg, transfer, transfer.size)

    def _complete_message(self, msg: Message) -> None:
        if msg.status is MessageStatus.DEGRADED:
            # Last chunk straggled in after the sender already gave up;
            # the DegradedSend outcome stands (done was triggered there).
            return
        msg.status = MessageStatus.COMPLETE
        msg.t_complete = self.sim.now
        self.messages_completed += 1
        if self.inv.on:
            self.inv.on_complete(msg, self.sim.now)
        obs = self.obs
        if obs.on:
            # Account completions on the *sender's* lane so the series
            # lines up with its messages_sent (this runs receiver-side).
            obs.metrics.counter(f"engine.{msg.src}.messages_completed").inc()
            if msg.t_post is not None:
                obs.metrics.histogram(
                    f"engine.{msg.src}.message_latency_us"
                ).observe(self.sim.now - msg.t_post)
            obs.flight.record(
                "complete", self.sim.now, msg.src,
                {"msg": msg.msg_id, "retries": msg.retries},
            )
            if obs.tracer.enabled:
                obs.tracer.async_end(
                    msg.src, "messages", f"msg{msg.msg_id}", msg.msg_id,
                    self.sim.now, cat="message",
                    args={"retries": msg.retries},
                )
        self._cancel_watchdog(msg)
        assert msg.done is not None
        msg.done.trigger(msg)
        for handle in self._posted_recvs:
            if handle.matched is None and handle.matches(msg):
                handle.matched = msg
                self._posted_recvs.remove(handle)
                assert handle.done is not None
                handle.done.trigger(msg)
                return
        self._unexpected.append(msg)

    # ------------------------------------------------------------------ #
    # fault handling: rerouting, retries, watchdogs (docs/faults.md)
    # ------------------------------------------------------------------ #

    def _on_nic_down(self, nic: Nic, aborted: List[Transfer]) -> None:
        """A local rail died; re-plan what it stranded onto survivors.

        Deferred by one zero-delay event so the NIC finishes its own
        abort bookkeeping (and every listener sees a consistent state)
        before replacement submissions hit the event queue.
        """
        for t in aborted:
            if t.src_node in ("", self.machine.name):
                self.sim.schedule(0.0, self._resubmit_transfer, t, "nic-down")

    def _on_nic_up(self, nic: Nic) -> None:
        """A rail recovered: drain work parked while everything was down."""
        stranded, self._stranded = self._stranded, []
        for t in stranded:
            if not t.retried and t.t_delivered is None:
                self._resubmit_transfer(t, "recovery")
        stalled, self._stalled_rdv_data = self._stalled_rdv_data, []
        for msg in stalled:
            if msg.status is MessageStatus.RDV_REQUESTED:
                self._launch_rdv_data(msg)

    def _resubmit_transfer(self, old: Transfer, reason: str) -> bool:
        """Issue a 1:1 replacement for a lost transfer on a surviving rail.

        Same offset, size and chunk indices, so receiver-side chunk
        accounting is untouched.  Returns True when a replacement was
        submitted (or none was needed), False when the transfer is now
        parked (no up rail) or the message was degraded.
        """
        if old.retried or old.t_delivered is not None:
            return True
        msgs = self._messages_of(old)
        primary = msgs[0]
        if primary.status in _TERMINAL:
            old.retried = True
            return True
        if primary.retries >= self.max_retries:
            self._degrade_message(
                primary,
                f"retry budget ({self.max_retries}) exhausted "
                f"resending {old.kind.value}",
            )
            return False
        if old.kind is TransferKind.RDV_ACK and old.src_node != self.machine.name:
            # The lost ACK belongs to the receiver; the sender-side remedy
            # is to repeat the REQ — the receiver dedups and re-acks.
            if primary.status is not MessageStatus.RDV_REQUESTED:
                old.retried = True
                return True
            new = make_rdv_req(primary)
            new.retry_of = old.transfer_id
        else:
            new = self._clone_transfer(old)
        for n in self._routes.get(new.dst_node, ()):
            if not n.is_up:
                primary.note_rail_avoided(n.qualified_name, "down", self.sim.now)
        nic = self._retry_rail(new)
        if nic is None:
            if old not in self._stranded:
                self._stranded.append(old)
            return False
        old.retried = True
        # The replacement supersedes the original outright.  If the
        # original is somehow still in flight (its drop/abort marking
        # raced actual transmission), cancel its pending delivery — a
        # late original must never race its own retry into the receiver.
        old.superseded = True
        if old.wire_event is not None:
            self.sim.cancel(old.wire_event)
            old.wire_event = None
            self.deliveries_cancelled += 1
        for m in msgs:
            m.retries += 1
            m.transfers.append(new)
        self.retries_issued += 1
        if self.inv.on:
            self.inv.on_retry(primary, old, new, self.max_retries, self.sim.now)
        self.retry_log.append(
            RetryRecord(
                time=self.sim.now,
                msg_id=primary.msg_id,
                kind=new.kind.value,
                old_transfer=old.transfer_id,
                new_transfer=new.transfer_id,
                rail=nic.qualified_name,
                reason=reason,
            )
        )
        obs = self.obs
        if obs.on:
            node = self.machine.name
            obs.metrics.counter(f"engine.{node}.retries_issued").inc()
            obs.metrics.counter(f"engine.{node}.retries_{reason}").inc()
            obs.flight.record(
                "retry", self.sim.now, node,
                {
                    "msg": primary.msg_id,
                    "rail": nic.qualified_name,
                    "reason": reason,
                },
            )
            if obs.tracer.enabled:
                obs.tracer.instant(
                    node, "faults", "retry", self.sim.now, cat="fault",
                    args={
                        "msg": primary.msg_id,
                        "kind": new.kind.value,
                        "old_transfer": old.transfer_id,
                        "new_transfer": new.transfer_id,
                        "rail": nic.qualified_name,
                        "reason": reason,
                    },
                )
            if self.predictor is not None and not self.calib.on:
                self._predict_chunk(new, nic)
        if self.calib.on and self.predictor is not None:
            self._predict_chunk(new, nic)
        nic.submit(new, self.app_core)
        return True

    @staticmethod
    def _messages_of(transfer: Transfer) -> List[Message]:
        msgs = transfer.payload.get("messages")
        if msgs:
            return list(msgs)
        return [transfer.payload["message"]]

    @staticmethod
    def _clone_transfer(old: Transfer) -> Transfer:
        return Transfer(
            kind=old.kind,
            size=old.size,
            msg_id=old.msg_id,
            tag=old.tag,
            dst_node=old.dst_node,
            chunk_index=old.chunk_index,
            chunk_count=old.chunk_count,
            offset=old.offset,
            payload=dict(old.payload),
            aggregated_ids=old.aggregated_ids,
            retry_of=old.transfer_id,
        )

    def _retry_rail(self, transfer: Transfer) -> Optional[Nic]:
        """Best surviving rail for a replacement transfer, or None."""
        rails = [n for n in self._routes.get(transfer.dst_node, ()) if n.is_up]
        if transfer.kind is TransferKind.EAGER:
            rails = [n for n in rails if transfer.size <= n.profile.eager_limit]
        if not rails:
            return None
        if self.predictor is not None:
            mode = (
                TransferMode.RENDEZVOUS
                if transfer.kind is TransferKind.RDV_DATA
                else TransferMode.EAGER
            )
            return min(
                rails,
                key=lambda n: self.predictor.predict(n, transfer.size, mode),
            )
        return min(rails, key=lambda n: n.busy_until)

    def _degrade_message(self, msg: Message, reason: str) -> None:
        """Give up on a send: DegradedSend outcome, ``done`` fires, no hang."""
        if msg.status in _TERMINAL:
            return
        msg.status = MessageStatus.DEGRADED
        msg.outcome = DegradedSend(
            msg_id=msg.msg_id,
            reason=reason,
            retries=msg.retries,
            bytes_received=msg.bytes_received,
            size=msg.size,
        )
        self.messages_degraded += 1
        if self.inv.on:
            self.inv.on_degraded(msg, self.sim.now)
        obs = self.obs
        if obs.on:
            node = self.machine.name
            obs.metrics.counter(f"engine.{node}.messages_degraded").inc()
            obs.flight.record(
                "degraded", self.sim.now, node,
                {
                    "msg": msg.msg_id,
                    "reason": reason,
                    "retries": msg.retries,
                    "bytes_received": msg.bytes_received,
                },
            )
            # A send was given up on — dump the ring for post-mortem.
            obs.flight.trigger(
                "degraded-send",
                self.sim.now,
                detail={"msg": msg.msg_id, "reason": reason, "node": node},
            )
            if obs.tracer.enabled:
                obs.tracer.instant(
                    node, "faults", "degraded", self.sim.now, cat="fault",
                    args={
                        "msg": msg.msg_id,
                        "reason": reason,
                        "retries": msg.retries,
                        "bytes_received": msg.bytes_received,
                    },
                )
                # Close the message's async span so the trace validates
                # even when a send is given up on.
                obs.tracer.async_end(
                    msg.src, "messages", f"msg{msg.msg_id}", msg.msg_id,
                    self.sim.now, cat="message",
                    args={"degraded": True},
                )
        self._cancel_watchdog(msg)
        if msg.done is not None and not msg.done.triggered:
            msg.done.trigger(msg)

    # -- watchdog ----------------------------------------------------------

    @staticmethod
    def _progress_of(msg: Message) -> Tuple[str, int, int]:
        return (msg.status.value, msg.chunks_received, len(msg.transfers))

    def _arm_watchdog(
        self, msg: Message, attempt: int, delay: float, last_progress
    ) -> None:
        self._watchdogs[msg.msg_id] = self.sim.schedule(
            delay, self._watchdog_fire, msg, attempt, last_progress
        )

    def _cancel_watchdog(self, msg: Message) -> None:
        ev = self._watchdogs.pop(msg.msg_id, None)
        if ev is not None:
            self.sim.cancel(ev)

    def _backoff(self, attempt: int) -> float:
        if attempt > 64:  # factor**attempt overflows a double long after
            return self.backoff_max  # the ladder is pinned at the cap anyway
        return min(
            self.backoff_max, self.backoff_base * self.backoff_factor ** attempt
        )

    def _watchdog_fire(self, msg: Message, attempt: int, last_progress) -> None:
        """Periodic loss check for one in-flight message.

        Retries (and the exponential backoff ladder) are only consumed
        when lost work is actually found; a message that is merely slow —
        or legitimately waiting for its receiver — is re-checked at the
        base interval as long as it keeps making progress.
        """
        self._watchdogs.pop(msg.msg_id, None)
        if msg.status in _TERMINAL:
            return
        lost = [
            t
            for t in msg.transfers
            if (t.aborted or t.dropped)
            and not t.retried
            and t.t_delivered is None
        ]
        progress = self._progress_of(msg)
        if not lost:
            if progress != last_progress:
                self._arm_watchdog(msg, 0, self.timeout, progress)
            elif attempt >= self.max_retries:
                self._degrade_message(
                    msg,
                    f"no progress across {attempt + 1} timeout windows",
                )
            else:
                self._arm_watchdog(
                    msg, attempt + 1, self._backoff(attempt), progress
                )
            return
        if msg.retries >= self.max_retries:
            self._degrade_message(
                msg,
                f"retry budget ({self.max_retries}) exhausted with "
                f"{len(lost)} transfer(s) lost",
            )
            return
        reissued = False
        for t in lost:
            if msg.status in _TERMINAL:
                return
            if self._resubmit_transfer(t, "timeout"):
                reissued = True
        if msg.status in _TERMINAL:
            return
        progress = self._progress_of(msg)
        if not reissued and progress == last_progress and attempt >= self.max_retries:
            # Nothing could be reissued (every rail down, work stranded)
            # and nothing else moved for the whole strike budget: stop
            # waiting for a recovery that may never come.
            self._degrade_message(
                msg,
                f"no usable rail across {attempt + 1} timeout windows "
                f"({len(lost)} transfer(s) stranded)",
            )
            return
        self._arm_watchdog(msg, attempt + 1, self._backoff(attempt), progress)

    # ------------------------------------------------------------------ #
    # drain accounting (docs/chaos.md)
    # ------------------------------------------------------------------ #

    def stuck_messages(self) -> List[str]:
        """Diagnoses for every send still non-terminal — a drained
        simulator should return an empty list.

        A non-empty list after ``sim.run()`` means a send neither
        completed nor degraded: a silent hang.  The chaos soak (and
        :meth:`InvariantMonitor.check_drain`) turn that into a structured
        violation instead of a mystery.
        """
        out: List[str] = []
        for msg in self.sent_log:
            if msg.status in _TERMINAL:
                continue
            out.append(
                f"msg {msg.msg_id} {msg.size}B {msg.src}->{msg.dest} "
                f"tag={msg.tag} status={msg.status.value} "
                f"chunks={msg.chunks_received}/{msg.chunks_expected} "
                f"bytes={msg.bytes_received} retries={msg.retries}"
            )
        return out

    def drain_stuck(self) -> List[Message]:
        """Force every still-pending send into a DEGRADED outcome.

        The end-of-run counterpart of the watchdog: whatever is left
        hanging when the event queue went quiet gets a diagnosable
        :class:`DegradedSend` (its ``done`` event fires) instead of
        staying silently incomplete forever.  Returns the messages
        drained this way.
        """
        drained: List[Message] = []
        for msg in self.sent_log:
            if msg.status in _TERMINAL:
                continue
            self._degrade_message(
                msg,
                f"stuck at drain in status {msg.status.value} "
                f"({msg.bytes_received}/{msg.size}B received)",
            )
            drained.append(msg)
        return drained

    # ------------------------------------------------------------------ #

    def _check_ownership(self, msg: Message) -> None:
        if msg.src != self.machine.name:
            raise ProtocolError(
                f"engine {self.machine.name} asked to send msg {msg.msg_id} "
                f"owned by {msg.src}"
            )
