"""NmadEngine: the NewMadeleine communication engine, all layers wired.

One engine per node.  The application layer API is ``isend`` /
``post_recv``; everything below (mode choice, aggregation, splitting,
multicore offload, rendezvous) is delegated to the strategy plug-in and
the substrates.

Measurement semantics
---------------------
``Message.done`` triggers when the *receiver* finished processing the
last chunk.  Sender and receiver live in one simulator, so this global
observation is exact — it replaces the clock-synchronization/ping-pong-
halving gymnastics of real-testbed measurements.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import NicEstimator
from repro.core.packets import Message, MessageStatus, RecvHandle, TransferMode
from repro.core.prediction import CompletionPredictor
from repro.core.rendezvous import (
    make_aggregated_eager,
    make_eager_chunks,
    make_rdv_ack,
    make_rdv_chunks,
    make_rdv_req,
)
from repro.core.scheduler import OptimizerScheduler
from repro.core.strategies.base import Strategy
from repro.hardware.core import Core
from repro.hardware.machine import Machine
from repro.networks.nic import Nic
from repro.networks.transfer import Transfer, TransferKind
from repro.pioman.progress import PiomanEngine
from repro.pioman.requests import SendRequest
from repro.simtime import SimEvent
from repro.threading.marcel import MarcelScheduler
from repro.util.errors import ConfigurationError, ProtocolError


class NmadEngine:
    """The multirail communication engine for one node.

    Parameters
    ----------
    machine:
        The node (cores + NICs must already be wired).
    strategy:
        The optimization strategy plug-in.
    estimators:
        Sampled per-technology profiles (from
        :class:`~repro.core.sampling.ProfileStore`); required by the
        sampling-based strategies.
    app_core_id:
        The core the application (and therefore the strategy and the
        default submissions) runs on.
    pioman:
        Progress engine; built automatically when omitted.  Its poll core
        defaults to the app core — the single-threaded configuration of
        the paper's benchmarks.
    multicore_rx:
        Forwarded to the auto-built PIOMan engine: let receive-side
        processing spill onto idle cores (the paper's future-work
        improvement; see :class:`~repro.pioman.PiomanEngine`).
    """

    def __init__(
        self,
        machine: Machine,
        strategy: Strategy,
        estimators: Optional[Dict[str, NicEstimator]] = None,
        app_core_id: int = 0,
        pioman: Optional[PiomanEngine] = None,
        marcel: Optional[MarcelScheduler] = None,
        multicore_rx: bool = False,
    ) -> None:
        if not machine.nics:
            raise ConfigurationError(f"{machine.name} has no NICs")
        for nic in machine.nics:
            if nic.wire is None:
                raise ConfigurationError(f"{nic.qualified_name} is not wired")
        self.machine = machine
        self.sim = machine.sim
        self.app_core: Core = machine.cores[app_core_id]
        self.marcel = marcel or MarcelScheduler(machine)
        self.pioman = pioman or PiomanEngine(
            machine,
            marcel=self.marcel,
            poll_core_id=app_core_id,
            multicore_rx=multicore_rx,
        )
        self.pioman.bind()
        self.pioman.rx_dispatch = self._on_transfer
        self.predictor = (
            CompletionPredictor(estimators) if estimators else None
        )
        self.scheduler = OptimizerScheduler(self)
        self.strategy = strategy
        strategy.attach(self)
        self._routes: Dict[str, List[Nic]] = defaultdict(list)
        for nic in machine.nics:
            for peer in nic.wire.peers_of(nic):
                if nic not in self._routes[peer.machine.name]:
                    self._routes[peer.machine.name].append(nic)
            nic.idle_listeners.append(self.scheduler.on_nic_idle)
        # receive-side state
        self._posted_recvs: List[RecvHandle] = []
        self._unexpected: List[Message] = []
        self._pending_rdv: List[Tuple[Message, Nic]] = []
        # counters
        self.messages_sent = 0
        self.messages_completed = 0
        self.bytes_sent = 0

    def __repr__(self) -> str:
        return (
            f"<NmadEngine {self.machine.name} strategy={self.strategy.name} "
            f"rails={[n.name for n in self.machine.nics]}>"
        )

    # ------------------------------------------------------------------ #
    # application layer API
    # ------------------------------------------------------------------ #

    def isend(self, dest: str, size: int, tag: int = 0) -> Message:
        """Enqueue a send and return immediately (the application keeps
        computing; the scheduler activates at the end of the instant)."""
        if dest not in self._routes:
            raise ConfigurationError(
                f"no rail from {self.machine.name} to {dest!r}; reachable: "
                f"{sorted(self._routes)}"
            )
        msg = Message(src=self.machine.name, dest=dest, size=size, tag=tag)
        msg.done = SimEvent(self.sim, name=f"msg{msg.msg_id}.done")
        msg.t_post = self.sim.now
        msg.mode = self.strategy.choose_mode(msg)
        self.messages_sent += 1
        self.bytes_sent += size
        self.scheduler.enqueue(msg)
        return msg

    def post_recv(
        self, source: Optional[str] = None, tag: Optional[int] = None
    ) -> RecvHandle:
        """Post a receive; its ``done`` event fires with the matched
        message once that message fully arrived."""
        handle = RecvHandle(node=self.machine.name, source=source, tag=tag)
        handle.done = SimEvent(self.sim, name=f"recv@{self.machine.name}")
        for msg in self._unexpected:
            if handle.matches(msg):
                self._unexpected.remove(msg)
                handle.matched = msg
                handle.done.trigger(msg)
                return handle
        self._posted_recvs.append(handle)
        # A rendezvous may have been waiting for exactly this buffer.
        for msg, nic in list(self._pending_rdv):
            if handle.matches(msg):
                self._pending_rdv.remove((msg, nic))
                self._send_rdv_ack(msg, nic)
                break
        return handle

    def cancel_recv(self, handle: RecvHandle) -> bool:
        """Withdraw a posted receive that has not matched yet.

        Returns True when the handle was pending and is now cancelled;
        False when it already matched (the message is the caller's).
        Rendezvous senders waiting on this buffer keep waiting for the
        next matching post — exactly as if the receive had never been
        posted.
        """
        if handle.matched is not None:
            return False
        try:
            self._posted_recvs.remove(handle)
        except ValueError:
            raise ProtocolError(
                f"receive handle was not posted on {self.machine.name}"
            ) from None
        return True

    def rails_to(self, dest: str) -> List[Nic]:
        """Local NICs wired towards ``dest`` (strategy-facing)."""
        rails = self._routes.get(dest)
        if not rails:
            raise ConfigurationError(f"no rail towards {dest!r}")
        return list(rails)

    # ------------------------------------------------------------------ #
    # submission helpers (called by strategies)
    # ------------------------------------------------------------------ #

    def submit_eager_chunks(
        self,
        msg: Message,
        chunks: Sequence[Tuple[Nic, int]],
        offload: bool = False,
        allow_preempt: bool = True,
    ) -> None:
        """Send ``msg`` as eager chunks, one per (nic, size) pair.

        ``offload=True`` routes the submissions through PIOMan's
        to-be-sent list so idle cores perform the PIO copies in parallel
        (§III-D); otherwise every chunk is posted from the app core.
        """
        self._check_ownership(msg)
        sizes = [s for _, s in chunks]
        transfers = make_eager_chunks(msg, sizes)
        msg.mode = TransferMode.EAGER
        msg.status = MessageStatus.IN_TRANSFER
        msg.expect_chunks(len(chunks))
        msg.rails_used = [nic.qualified_name for nic, _ in chunks]
        msg.chunk_sizes = list(sizes)
        msg.transfers.extend(transfers)
        if offload and len(chunks) > 1:
            requests = [
                SendRequest(transfer=t, nic=nic)
                for t, (nic, _) in zip(transfers, chunks)
            ]
            self.pioman.register_sends(
                requests, issuing_core=self.app_core, allow_preempt=allow_preempt
            )
        else:
            for t, (nic, _) in zip(transfers, chunks):
                nic.submit(t, self.app_core)

    def submit_aggregated_eager(self, msgs: Sequence[Message], nic: Nic) -> None:
        """Pack several messages into one eager packet on one rail."""
        for m in msgs:
            self._check_ownership(m)
        packet = make_aggregated_eager(msgs)
        if packet.size > nic.profile.eager_limit:
            raise ProtocolError(
                f"aggregated packet of {packet.size}B exceeds "
                f"{nic.profile.name} eager limit"
            )
        ids = [m.msg_id for m in msgs]
        for m in msgs:
            m.mode = TransferMode.EAGER
            m.status = MessageStatus.IN_TRANSFER
            m.expect_chunks(1)
            m.rails_used = [nic.qualified_name]
            m.chunk_sizes = [m.size]
            m.aggregated_with = [i for i in ids if i != m.msg_id]
        # Building the aggregate (iovec entries, or a staging copy without
        # gather/scatter hardware) costs CPU before the post.
        agg_cost = nic.driver.aggregation_cpu_cost(
            [m.size for m in msgs], self.machine.memcpy_rate
        )
        if agg_cost > 0:
            self.app_core.run(agg_cost, label="aggregate")
        for m in msgs:
            m.transfers.append(packet)
        nic.submit(packet, self.app_core)

    def start_rendezvous(self, msg: Message, control_nic: Nic) -> None:
        """Send the RDV_REQ for ``msg`` on ``control_nic``."""
        self._check_ownership(msg)
        msg.mode = TransferMode.RENDEZVOUS
        msg.status = MessageStatus.RDV_REQUESTED
        req = make_rdv_req(msg)
        msg.transfers.append(req)
        control_nic.submit(req, self.app_core)

    # ------------------------------------------------------------------ #
    # receive path (rx_dispatch target; runs after PIOMan charged costs)
    # ------------------------------------------------------------------ #

    def _on_transfer(self, transfer: Transfer, nic: Nic) -> None:
        if transfer.kind is TransferKind.EAGER:
            self._on_eager(transfer)
        elif transfer.kind is TransferKind.RDV_REQ:
            self._on_rdv_req(transfer, nic)
        elif transfer.kind is TransferKind.RDV_ACK:
            self._on_rdv_ack(transfer)
        elif transfer.kind is TransferKind.RDV_DATA:
            self._on_rdv_data(transfer)
        else:  # pragma: no cover - exhaustive over TransferKind
            raise ProtocolError(f"unknown transfer kind {transfer.kind}")

    def _on_eager(self, transfer: Transfer) -> None:
        if transfer.aggregated_ids:
            for msg in transfer.payload["messages"]:
                if msg.account_chunk(msg.size):
                    self._complete_message(msg)
            return
        msg: Message = transfer.payload["message"]
        if msg.account_chunk(transfer.size):
            self._complete_message(msg)

    def _on_rdv_req(self, transfer: Transfer, nic: Nic) -> None:
        msg: Message = transfer.payload["message"]
        for handle in self._posted_recvs:
            if handle.matches(msg):
                self._send_rdv_ack(msg, nic)
                return
        # No buffer yet: the rendezvous waits for a matching post_recv.
        self._pending_rdv.append((msg, nic))

    def _send_rdv_ack(self, msg: Message, nic: Nic) -> None:
        ack = make_rdv_ack(msg)
        msg.transfers.append(ack)
        nic.submit(ack, self.app_core)

    def _on_rdv_ack(self, transfer: Transfer) -> None:
        """Back on the sender: the receiver is ready — plan and push data."""
        msg: Message = transfer.payload["message"]
        if msg.src != self.machine.name:
            raise ProtocolError(
                f"RDV_ACK for msg {msg.msg_id} arrived at {self.machine.name}, "
                f"but the sender is {msg.src}"
            )
        plan = self.strategy.plan_rdv_data(msg)
        msg.status = MessageStatus.IN_TRANSFER
        msg.expect_chunks(len(plan.nics))
        msg.rails_used = [n.qualified_name for n in plan.nics]
        msg.chunk_sizes = list(plan.sizes)
        for t, nic in zip(make_rdv_chunks(msg, plan.sizes), plan.nics):
            msg.transfers.append(t)
            nic.submit(t, self.app_core)

    def _on_rdv_data(self, transfer: Transfer) -> None:
        msg: Message = transfer.payload["message"]
        if msg.account_chunk(transfer.size):
            self._complete_message(msg)

    def _complete_message(self, msg: Message) -> None:
        msg.status = MessageStatus.COMPLETE
        msg.t_complete = self.sim.now
        self.messages_completed += 1
        assert msg.done is not None
        msg.done.trigger(msg)
        for handle in self._posted_recvs:
            if handle.matched is None and handle.matches(msg):
                handle.matched = msg
                self._posted_recvs.remove(handle)
                assert handle.done is not None
                handle.done.trigger(msg)
                return
        self._unexpected.append(msg)

    # ------------------------------------------------------------------ #

    def _check_ownership(self, msg: Message) -> None:
        if msg.src != self.machine.name:
            raise ProtocolError(
                f"engine {self.machine.name} asked to send msg {msg.msg_id} "
                f"owned by {msg.src}"
            )
