"""Application-level messages and their lifecycle.

A :class:`Message` is what the application hands to ``isend``: a byte
count, a destination and a tag.  The engine decides the transfer mode
(eager vs rendezvous), possibly splits the message into chunks over
several rails, and possibly aggregates several messages into one packet;
the :class:`Message` tracks how much of it has completed at the receiver.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.simtime import SimEvent
from repro.util.errors import ProtocolError

_msg_seq = itertools.count()


class TransferMode(enum.Enum):
    """Protocol a message travels under."""

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"


class MessageStatus(enum.Enum):
    """Lifecycle of a message, from isend to receiver-side completion."""

    CREATED = "created"          # isend called, not yet planned
    QUEUED = "queued"            # waiting in the out-list (all rails busy)
    RDV_REQUESTED = "rdv-req"    # rendezvous request in flight
    IN_TRANSFER = "in-transfer"  # chunks submitted to NICs
    COMPLETE = "complete"        # fully processed at the receiver
    DEGRADED = "degraded"        # gave up after the retry budget ran out


@dataclass(frozen=True)
class DegradedSend:
    """Terminal outcome of a send that exhausted its retry budget.

    The contract (see docs/faults.md): instead of hanging, the engine
    triggers ``msg.done`` with the message in status ``DEGRADED`` and
    this record attached as ``msg.outcome``.  ``bytes_received`` says how
    much of the payload made it before the engine gave up.
    """

    msg_id: int
    reason: str
    retries: int
    bytes_received: int
    size: int

    @property
    def delivered_fraction(self) -> float:
        return self.bytes_received / self.size if self.size else 0.0


@dataclass(slots=True)
class Message:
    """One application send.

    ``done`` triggers (with the message) when the *receiver* finished
    processing every chunk — the completion the ping-pong benchmarks time.

    Slotted like :class:`~repro.networks.transfer.Transfer`: the chunk
    accounting on the receive path reads/writes these fields per chunk,
    and open-loop workloads keep millions of messages alive at once.
    """

    src: str
    dest: str
    size: int
    tag: int = 0
    msg_id: int = field(default_factory=lambda: next(_msg_seq))
    mode: Optional[TransferMode] = None
    status: MessageStatus = MessageStatus.CREATED
    done: Optional[SimEvent] = None

    # chunk bookkeeping (receiver side)
    chunks_expected: Optional[int] = None
    chunks_received: int = 0
    bytes_received: int = 0

    # timing (virtual µs)
    t_post: Optional[float] = None       # isend instant
    t_complete: Optional[float] = None   # receiver done instant

    # delivery integrity (see docs/chaos.md)
    #: next per-message wire sequence number (stamped at NIC submit; a
    #: retry gets a fresh seq over the same chunk interval)
    wire_seq: int = 0
    #: chunk intervals already accounted — the receiver-side duplicate
    #: suppression set: a retry racing its late original lands here once
    delivered_intervals: set = field(default_factory=set)
    #: deliveries ignored because their interval was already accounted
    duplicates_suppressed: int = 0

    # fault handling (see repro.faults and docs/faults.md)
    #: replacement transfers issued so far for lost/aborted chunks
    retries: int = 0
    #: set (with status DEGRADED) when the engine gave up on this send
    outcome: Optional[DegradedSend] = None
    #: human-readable notes on rails the planner avoided and why
    rail_notes: List[str] = field(default_factory=list)

    # how the engine transferred it (filled by strategies; read by tests)
    rails_used: List[str] = field(default_factory=list)
    chunk_sizes: List[int] = field(default_factory=list)
    aggregated_with: List[int] = field(default_factory=list)
    #: every NIC-level transfer that carried (part of) this message,
    #: control packets included — the raw material for trace.explain()
    transfers: List = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ProtocolError(f"negative message size: {self.size}")

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.size}B {self.src}->{self.dest} "
            f"tag={self.tag} {self.status.value}>"
        )

    @property
    def latency(self) -> Optional[float]:
        """Post-to-receiver-completion time, once complete."""
        if self.t_post is None or self.t_complete is None:
            return None
        return self.t_complete - self.t_post

    def note_rail_avoided(
        self, rail: str, reason: str, now: Optional[float] = None
    ) -> None:
        """Record why the planner skipped a rail (read by trace.explain).

        Deduplicated on (rail, reason): re-planning every activation while
        a fault holds produces one note, stamped with its first occurrence.
        """
        key = f"{rail}: {reason}"
        for existing in self.rail_notes:
            if existing.startswith(key):
                return
        stamp = "" if now is None else f" (first at t={now:.2f}us)"
        self.rail_notes.append(key + stamp)

    # ------------------------------------------------------------------ #
    # receiver-side accounting
    # ------------------------------------------------------------------ #

    def expect_chunks(self, count: int) -> None:
        if count < 1:
            raise ProtocolError(f"message needs >=1 chunk, got {count}")
        if self.chunks_expected is not None and self.chunks_expected != count:
            raise ProtocolError(
                f"msg {self.msg_id}: chunk count changed "
                f"{self.chunks_expected} -> {count}"
            )
        self.chunks_expected = count

    def next_wire_seq(self) -> int:
        """Allocate the next wire sequence number for an outgoing chunk."""
        seq = self.wire_seq
        self.wire_seq = seq + 1
        return seq

    def register_delivery(self, chunk_key) -> bool:
        """First delivery of ``chunk_key``?  Record it and return True.

        Returns False for a duplicate — a retry racing its late original
        (either order); the caller must then *not* account the chunk, so
        a byte interval is only ever summed once (exactly-once delivery).
        """
        if chunk_key in self.delivered_intervals:
            self.duplicates_suppressed += 1
            return False
        self.delivered_intervals.add(chunk_key)
        return True

    def account_chunk(self, nbytes: int) -> bool:
        """Record one received chunk; True when the message is complete."""
        if self.chunks_expected is None:
            raise ProtocolError(f"msg {self.msg_id}: chunk before expect_chunks")
        if self.chunks_received >= self.chunks_expected:
            raise ProtocolError(f"msg {self.msg_id}: more chunks than expected")
        self.chunks_received += 1
        self.bytes_received += nbytes
        if self.chunks_received == self.chunks_expected:
            if self.bytes_received != self.size:
                raise ProtocolError(
                    f"msg {self.msg_id}: received {self.bytes_received}B "
                    f"of a {self.size}B message"
                )
            return True
        return False


@dataclass(slots=True)
class RecvHandle:
    """A posted receive: matches incoming messages by (source, tag).

    ``source``/``tag`` of ``None`` match anything (wildcards).  ``done``
    triggers with the matched :class:`Message`.
    """

    node: str
    source: Optional[str] = None
    tag: Optional[int] = None
    done: Optional[SimEvent] = None
    matched: Optional[Message] = None

    def matches(self, msg: Message) -> bool:
        if self.source is not None and msg.src != self.source:
            return False
        if self.tag is not None and msg.tag != self.tag:
            return False
        return True
