"""The optimizer/scheduler layer: out-list management and activation.

Paper Fig. 5 / §III-A: "The application enqueues packets into a list and
immediately returns to computing.  The packet scheduler is only activated
when a NIC becomes idle in order to feed it."  Activation also happens
(deferred to the end of the current instant) when new packets arrive, so
several ``isend`` calls issued back-to-back are visible to the strategy
*together* — the window that makes aggregation possible.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, TYPE_CHECKING

from repro.core.packets import Message, MessageStatus
from repro.util.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import NmadEngine
    from repro.networks.nic import Nic


class OptimizerScheduler:
    """Waiting-pack list + strategy activation for one engine."""

    def __init__(self, engine: "NmadEngine") -> None:
        self.engine = engine
        self.sim = engine.sim
        self._outlist: Deque[Message] = deque()
        self._activation_pending = False
        self._in_activation = False
        self.activations: int = 0

    def __repr__(self) -> str:
        return f"<OptimizerScheduler {self.engine.machine.name}: {len(self._outlist)} waiting>"

    def __len__(self) -> int:
        return len(self._outlist)

    # ------------------------------------------------------------------ #
    # out-list access (strategy-facing)
    # ------------------------------------------------------------------ #

    def enqueue(self, msg: Message) -> None:
        msg.status = MessageStatus.QUEUED
        self._outlist.append(msg)
        self.request_activation()

    def peek_ready(self) -> Optional[Message]:
        """First *sendable* queued message (skips messages whose every
        rail is down — they stay parked until a recovery event)."""
        for msg in self._outlist:
            if self.engine.sendable(msg):
                return msg
        return None

    def pop_ready(self) -> Optional[Message]:
        for msg in self._outlist:
            if self.engine.sendable(msg):
                self._outlist.remove(msg)
                return msg
        return None

    def iter_ready(self) -> Iterator[Message]:
        """Snapshot iteration over sendable messages (safe to
        :meth:`remove` while iterating)."""
        return iter([m for m in self._outlist if self.engine.sendable(m)])

    def remove(self, msg: Message) -> None:
        try:
            self._outlist.remove(msg)
        except ValueError:
            raise SchedulingError(f"{msg!r} is not in the out-list") from None

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    def request_activation(self) -> None:
        """Schedule one strategy pass at the end of the current instant.

        Coalesced: many enqueues in one instant yield one activation, so
        the strategy sees the whole batch (the aggregation window).
        """
        if not self._activation_pending:
            self._activation_pending = True
            self.sim.schedule(0.0, self._activate)

    def on_nic_idle(self, nic: "Nic") -> None:
        """A NIC drained its queue; give the strategy a chance to feed it."""
        if self._outlist:
            self.request_activation()

    def _activate(self) -> None:
        self._activation_pending = False
        if self._in_activation:
            # A strategy re-triggered activation from within itself; the
            # pending flag was reset so the re-request will schedule anew.
            return
        self._in_activation = True
        try:
            self.activations += 1
            inv = self.engine.inv
            if inv.on:
                inv.on_activation(
                    self.engine.machine.name, self._outlist, self.sim.now
                )
            for msg in self._outlist:
                # A message posted while every rail was down carries no
                # mode yet; decide it at the first activation that can
                # actually send (strategies branch on msg.mode).
                if msg.mode is None and self.engine.sendable(msg):
                    msg.mode = self.engine.strategy.choose_mode(msg)
            obs = self.engine.obs
            if obs.on:
                from repro.obs.metrics import DEFAULT_DEPTH_BUCKETS

                node = self.engine.machine.name
                obs.metrics.counter(f"scheduler.{node}.activations").inc()
                obs.metrics.histogram(
                    f"scheduler.{node}.outlist_depth",
                    bounds=DEFAULT_DEPTH_BUCKETS,
                ).observe(len(self._outlist))
            self.engine.strategy.schedule_outlist()
        finally:
            self._in_activation = False
