"""Runtime invariant checking: machine-checked delivery integrity.

An :class:`InvariantMonitor` is wired through the engine, scheduler,
NICs, PIOMan and the fault injector exactly like the ``repro.obs``
observability hub: every hook site guards on a single ``inv.on``
attribute read against the shared :data:`NULL_INVARIANTS` singleton, so
a cluster built without invariants pays one attribute read per hook and
moves **no simulated timestamp** when they are enabled — the monitor is
purely passive, it reads state and raises, it never schedules events.

Checked invariants (the catalogue in ``docs/chaos.md``):

``clock-monotonic``
    The simulated clock observed by any hook never moves backwards.
``chunk-exactly-once``
    No (message, chunk interval) is accounted to the application twice —
    a retry racing its late original must be suppressed, not summed.
``chunk-checksum``
    Every data chunk arrives with the checksum it was stamped with at
    submit time (catches payload-identity mix-ups on the wire path).
``byte-conservation``
    A completed message received exactly ``msg.size`` bytes over exactly
    ``chunks_expected`` distinct chunk intervals, across any number of
    hetero-splits and retries.
``chunk-bounds``
    A chunk's ``[offset, offset+size)`` interval lies inside the message
    and never overlaps a previously accounted interval.
``retry-bounds``
    No message exceeds its engine's retry budget.
``nic-tx-sanity``
    Transmit-engine work intervals are non-negative, never in the
    future, and data transmissions on one NIC never overlap (the tx
    resource serializes them).
``rx-causality``
    Receive-side processing completes at or after wire delivery.
``fault-rule-order``
    Fault actions fire in non-decreasing ``(time, rule_id)`` order —
    two rules at the same instant apply in deterministic rule-id order
    regardless of event-heap internals.
``drain-no-stuck``
    At drain (event queue empty) no message is in a non-terminal state:
    every send is COMPLETE or DEGRADED, nothing silently hangs.
``route-liveness``
    An adaptive fat-tree switch never pins a flow to a down spine while
    another spine is up (static routing and total outages drop by
    design and are exempt).
``replan-byte-conservation``
    When a collective re-plans mid-flight, bytes already accounted plus
    bytes still pending equal the originally planned total — a re-plan
    reorders remaining hops, it never duplicates or leaks them.
``collective-completion``
    A re-planning collective finishes with every planned byte accounted
    exactly once.

On failure the monitor raises a structured :class:`InvariantViolation`
carrying the chaos seed and schedule JSON (when bound via
:meth:`InvariantMonitor.bind_context`) plus a trail of the most recent
hook observations — enough to replay and shrink the failing scenario
(see :func:`repro.faults.chaos.shrink`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.util.errors import ReproError

#: how many hook observations the violation trail keeps by default
DEFAULT_TRAIL_DEPTH = 64

#: tolerance for float comparisons on accumulated simulated times
_EPS = 1e-9


class InvariantViolation(ReproError):
    """A machine-checked engine invariant failed.

    Structured: ``invariant`` names the broken rule, ``detail`` is the
    human-readable diagnosis, ``time`` the simulated instant, ``seed``
    and ``schedule`` identify the chaos scenario (when one was bound),
    and ``trail`` holds the monitor's most recent observations.
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        time: float,
        seed: Optional[int] = None,
        schedule: Optional[Dict[str, Any]] = None,
        trail: Optional[List[str]] = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.time = time
        self.seed = seed
        self.schedule = schedule
        self.trail = list(trail or [])
        super().__init__(self.report())

    def __reduce__(self):
        # Default exception pickling replays ``__init__(*args)`` with the
        # formatted report string as the only arg — wrong signature.  A
        # violation must survive the trip back from a soak worker process
        # intact, so reconstruct from the structured fields.
        return (
            InvariantViolation,
            (
                self.invariant,
                self.detail,
                self.time,
                self.seed,
                self.schedule,
                self.trail,
            ),
        )

    def report(self) -> str:
        """The full violation report (what lands in the exception text)."""
        lines = [
            f"invariant {self.invariant!r} violated at t={self.time:.3f}us: "
            f"{self.detail}"
        ]
        if self.seed is not None:
            lines.append(f"  chaos seed: {self.seed}")
        if self.schedule is not None:
            events = self.schedule.get("events", [])
            lines.append(f"  schedule: {len(events)} action(s)")
            for entry in events[:8]:
                lines.append(f"    {entry}")
            if len(events) > 8:
                lines.append(f"    ... {len(events) - 8} more")
        if self.trail:
            lines.append("  recent observations:")
            for obs in self.trail[-12:]:
                lines.append(f"    {obs}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (what ``cli chaos --json`` emits)."""
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "time": self.time,
            "seed": self.seed,
            "schedule": self.schedule,
            "trail": list(self.trail),
        }


@dataclass
class _MessageLedger:
    """Receiver-side double-entry bookkeeping for one message."""

    size: int
    #: accounted chunk intervals, keyed (offset, size)
    intervals: Dict[Tuple[int, int], int] = field(default_factory=dict)
    bytes_accounted: int = 0
    completed: bool = False
    degraded: bool = False


class NullInvariantMonitor:
    """The disabled monitor: one shared instance, every hook a no-op.

    Hook sites guard on :attr:`on` (a plain ``False`` attribute read) so
    none of these methods are reached on the healthy default path; they
    exist so unguarded test/diagnostic code can call them safely.
    """

    __slots__ = ()
    on = False

    def bind_context(self, seed=None, schedule=None) -> None:
        pass

    def on_send(self, msg) -> None:
        pass

    def on_delivery(self, msg, transfer, now) -> None:
        pass

    def on_duplicate(self, msg, transfer, now) -> None:
        pass

    def on_complete(self, msg, now) -> None:
        pass

    def on_degraded(self, msg, now) -> None:
        pass

    def on_retry(self, msg, old, new, max_retries, now) -> None:
        pass

    def on_activation(self, node, outlist, now) -> None:
        pass

    def on_tx(self, nic, transfer, start, now) -> None:
        pass

    def on_rx_done(self, transfer, nic, now) -> None:
        pass

    def on_fault(self, rule_id, action, now) -> None:
        pass

    def on_route(self, switch, spine, alive, now) -> None:
        pass

    def on_replan(self, rank, seq, planned, accounted, remaining, now) -> None:
        pass

    def on_collective_complete(self, rank, seq, planned, accounted, now) -> None:
        pass

    def check_drain(self, cluster) -> None:
        pass


class InvariantMonitor:
    """Simulation-time invariant checker for one cluster.

    Parameters
    ----------
    trail_depth:
        How many recent hook observations to keep for violation reports.
    strict_checksums:
        Verify the wire checksum of every delivered data chunk (on by
        default; the check is a handful of integer ops per chunk).
    """

    __slots__ = (
        "on",
        "trail_depth",
        "strict_checksums",
        "_trail",
        "_last_time",
        "_ledgers",
        "_last_fault",
        "seed",
        "schedule_json",
        "checks_performed",
        "duplicates_seen",
    )

    def __init__(
        self, trail_depth: int = DEFAULT_TRAIL_DEPTH, strict_checksums: bool = True
    ) -> None:
        self.on = True
        self.trail_depth = int(trail_depth)
        self.strict_checksums = bool(strict_checksums)
        self._trail: Deque[str] = deque(maxlen=self.trail_depth)
        self._last_time: float = float("-inf")
        self._ledgers: Dict[int, _MessageLedger] = {}
        self._last_fault: Tuple[float, int] = (float("-inf"), -1)
        #: chaos scenario identity, stamped into violations
        self.seed: Optional[int] = None
        self.schedule_json: Optional[Dict[str, Any]] = None
        #: total invariant checks performed (soak-throughput accounting)
        self.checks_performed: int = 0
        #: duplicate deliveries correctly suppressed by the engine
        self.duplicates_seen: int = 0

    def __repr__(self) -> str:
        return (
            f"<InvariantMonitor checks={self.checks_performed} "
            f"messages={len(self._ledgers)} dups={self.duplicates_seen}>"
        )

    # ------------------------------------------------------------------ #
    # context / plumbing
    # ------------------------------------------------------------------ #

    def bind_context(
        self,
        seed: Optional[int] = None,
        schedule: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Attach the chaos scenario identity to future violations."""
        self.seed = seed
        self.schedule_json = schedule

    def _note(self, text: str) -> None:
        self._trail.append(text)

    def _violate(self, invariant: str, detail: str, now: float) -> None:
        raise InvariantViolation(
            invariant,
            detail,
            now,
            seed=self.seed,
            schedule=self.schedule_json,
            trail=list(self._trail),
        )

    def _touch(self, now: float, what: str) -> None:
        """Clock-monotonicity check, piggybacked on every hook."""
        self.checks_performed += 1
        if now < self._last_time:
            self._violate(
                "clock-monotonic",
                f"{what} observed t={now} after t={self._last_time}",
                now,
            )
        self._last_time = now

    # ------------------------------------------------------------------ #
    # engine hooks
    # ------------------------------------------------------------------ #

    def on_send(self, msg) -> None:
        self._ledgers[msg.msg_id] = _MessageLedger(size=msg.size)
        self._note(f"send msg={msg.msg_id} {msg.size}B {msg.src}->{msg.dest}")

    def on_delivery(self, msg, transfer, now: float) -> None:
        """One data chunk is about to be accounted to ``msg``.

        Called *before* the engine's receiver-side accounting, so a
        double-delivery bug is caught here even if the accounting would
        go on to mis-sum it.
        """
        self._touch(now, f"delivery of transfer {transfer.transfer_id}")
        ledger = self._ledgers.get(msg.msg_id)
        if ledger is None:
            # A receive-side-only view (the sender's engine has no
            # monitor, or the message predates monitor installation).
            ledger = self._ledgers[msg.msg_id] = _MessageLedger(size=msg.size)
        if self.strict_checksums and transfer.checksum is not None:
            from repro.networks.transfer import wire_checksum

            expected = wire_checksum(transfer)
            if transfer.checksum != expected:
                self._violate(
                    "chunk-checksum",
                    f"msg {msg.msg_id} chunk #{transfer.transfer_id} "
                    f"(seq {transfer.seq_no}) carries checksum "
                    f"{transfer.checksum:#x}, expected {expected:#x}",
                    now,
                )
        # For aggregated packets the per-message share is the whole
        # message at offset 0; plain chunks use their wire interval.
        if transfer.aggregated_ids:
            key = (0, msg.size)
        else:
            key = (transfer.offset, transfer.size)
        offset, size = key
        if offset < 0 or offset + size > ledger.size:
            self._violate(
                "chunk-bounds",
                f"msg {msg.msg_id}: chunk [{offset}, {offset + size}) "
                f"outside a {ledger.size}B message",
                now,
            )
        prior = ledger.intervals.get(key)
        if prior is not None:
            self._violate(
                "chunk-exactly-once",
                f"msg {msg.msg_id}: chunk interval [{offset}, "
                f"{offset + size}) delivered twice (first by transfer "
                f"#{prior}, again by #{transfer.transfer_id}"
                + (
                    f", a retry of #{transfer.retry_of}"
                    if transfer.retry_of is not None
                    else ""
                )
                + ")",
                now,
            )
        for (o, s) in ledger.intervals:
            if offset < o + s and o < offset + size:
                self._violate(
                    "chunk-bounds",
                    f"msg {msg.msg_id}: chunk [{offset}, {offset + size}) "
                    f"overlaps accounted [{o}, {o + s})",
                    now,
                )
        ledger.intervals[key] = transfer.transfer_id
        ledger.bytes_accounted += size
        if ledger.bytes_accounted > ledger.size:
            self._violate(
                "byte-conservation",
                f"msg {msg.msg_id}: {ledger.bytes_accounted}B accounted "
                f"of a {ledger.size}B message",
                now,
            )
        self._note(
            f"chunk msg={msg.msg_id} [{offset},{offset + size}) "
            f"via #{transfer.transfer_id}"
        )

    def on_duplicate(self, msg, transfer, now: float) -> None:
        """The engine suppressed a duplicate delivery (correct behaviour)."""
        self._touch(now, f"duplicate transfer {transfer.transfer_id}")
        self.duplicates_seen += 1
        self._note(
            f"dup-suppressed msg={msg.msg_id} transfer=#{transfer.transfer_id}"
            + (
                f" (retry_of #{transfer.retry_of})"
                if transfer.retry_of is not None
                else ""
            )
        )

    def on_complete(self, msg, now: float) -> None:
        self._touch(now, f"completion of msg {msg.msg_id}")
        ledger = self._ledgers.get(msg.msg_id)
        if ledger is not None:
            if ledger.completed:
                self._violate(
                    "chunk-exactly-once",
                    f"msg {msg.msg_id} completed twice",
                    now,
                )
            ledger.completed = True
            if ledger.bytes_accounted != ledger.size:
                self._violate(
                    "byte-conservation",
                    f"msg {msg.msg_id} completed with "
                    f"{ledger.bytes_accounted}B of {ledger.size}B accounted",
                    now,
                )
        if msg.bytes_received != msg.size:
            self._violate(
                "byte-conservation",
                f"msg {msg.msg_id} completed with bytes_received="
                f"{msg.bytes_received} != size={msg.size}",
                now,
            )
        self._note(f"complete msg={msg.msg_id}")

    def on_degraded(self, msg, now: float) -> None:
        self._touch(now, f"degradation of msg {msg.msg_id}")
        ledger = self._ledgers.get(msg.msg_id)
        if ledger is not None:
            ledger.degraded = True
        reason = msg.outcome.reason if msg.outcome is not None else "?"
        self._note(f"degraded msg={msg.msg_id}: {reason}")

    def on_retry(self, msg, old, new, max_retries: int, now: float) -> None:
        self._touch(now, f"retry of transfer {old.transfer_id}")
        if msg.retries > max_retries:
            self._violate(
                "retry-bounds",
                f"msg {msg.msg_id} at {msg.retries} retries, budget is "
                f"{max_retries}",
                now,
            )
        if new.retry_of != old.transfer_id:
            self._violate(
                "retry-bounds",
                f"replacement #{new.transfer_id} says retry_of="
                f"{new.retry_of}, superseded transfer is #{old.transfer_id}",
                now,
            )
        self._note(
            f"retry msg={msg.msg_id} #{old.transfer_id}->#{new.transfer_id}"
        )

    # ------------------------------------------------------------------ #
    # scheduler / NIC / PIOMan / injector hooks
    # ------------------------------------------------------------------ #

    def on_activation(self, node: str, outlist, now: float) -> None:
        self._touch(now, f"scheduler activation on {node}")
        for msg in outlist:
            if msg.status.value in ("complete", "degraded"):
                self._violate(
                    "drain-no-stuck",
                    f"terminal msg {msg.msg_id} ({msg.status.value}) still "
                    f"queued in {node}'s out-list",
                    now,
                )

    def on_tx(self, nic, transfer, start: float, now: float) -> None:
        self._touch(now, f"tx of transfer {transfer.transfer_id}")
        if start - now > _EPS:
            self._violate(
                "nic-tx-sanity",
                f"{nic.qualified_name}: tx of #{transfer.transfer_id} "
                f"started at t={start}, after finishing at t={now}",
                now,
            )
        if nic._tx.in_use > 1:
            self._violate(
                "nic-tx-sanity",
                f"{nic.qualified_name}: transmit engine held "
                f"{nic._tx.in_use} times concurrently",
                now,
            )

    def on_rx_done(self, transfer, nic, now: float) -> None:
        self._touch(now, f"rx of transfer {transfer.transfer_id}")
        if (
            transfer.t_delivered is not None
            and transfer.t_complete is not None
            and transfer.t_complete + _EPS < transfer.t_delivered
        ):
            self._violate(
                "rx-causality",
                f"transfer #{transfer.transfer_id} completed receive-side "
                f"processing at t={transfer.t_complete} before its last "
                f"byte landed at t={transfer.t_delivered}",
                now,
            )

    def on_fault(self, rule_id: int, action, now: float) -> None:
        self._touch(now, f"fault rule {rule_id}")
        last_time, last_rule = self._last_fault
        if now < last_time or (now == last_time and rule_id < last_rule):
            self._violate(
                "fault-rule-order",
                f"fault rule {rule_id} ({action.action} {action.nic}) fired "
                f"at t={now} after rule {last_rule} at t={last_time}",
                now,
            )
        self._last_fault = (now, rule_id)
        self._note(f"fault rule={rule_id} {action.action} {action.nic}")

    # ------------------------------------------------------------------ #
    # fabric routing / collective re-plan hooks
    # ------------------------------------------------------------------ #

    def on_route(self, switch: str, spine, alive: bool, now: float) -> None:
        """An inter-pod flow was assigned a spine (or failed to be)."""
        self._touch(now, f"route decision on {switch}")
        if not alive:
            self._violate(
                "route-liveness",
                f"{switch}: flow pinned to down spine {spine} while "
                f"another spine is up",
                now,
            )

    def on_replan(
        self,
        rank: int,
        seq: int,
        planned: int,
        accounted: int,
        remaining: int,
        now: float,
    ) -> None:
        """A collective re-cut its remaining schedule mid-flight."""
        self._touch(now, f"re-plan on rank {rank}")
        if accounted + remaining != planned:
            self._violate(
                "replan-byte-conservation",
                f"rank {rank} collective {seq}: {accounted}B accounted + "
                f"{remaining}B pending != {planned}B planned",
                now,
            )
        self._note(
            f"replan rank={rank} seq={seq} "
            f"{accounted}/{planned}B accounted, {remaining}B re-cut"
        )

    def on_collective_complete(
        self, rank: int, seq: int, planned: int, accounted: int, now: float
    ) -> None:
        """A re-planning collective drained its send schedule."""
        self._touch(now, f"collective completion on rank {rank}")
        if accounted != planned:
            self._violate(
                "collective-completion",
                f"rank {rank} collective {seq} finished with {accounted}B "
                f"accounted of {planned}B planned",
                now,
            )
        self._note(f"collective-done rank={rank} seq={seq} {planned}B")

    # ------------------------------------------------------------------ #
    # drain audit
    # ------------------------------------------------------------------ #

    def check_drain(self, cluster) -> None:
        """At drain: every message terminal, no NIC mid-transmit.

        Raise :class:`InvariantViolation` naming every stuck message with
        a per-message diagnosis — the ``drain-no-stuck`` invariant that
        turns a silent hang into a structured failure.
        """
        now = cluster.sim.now
        self._touch(now, "drain audit")
        if cluster.sim.pending_events:
            self._violate(
                "drain-no-stuck",
                f"drain audit ran with {cluster.sim.pending_events} "
                f"event(s) still queued",
                now,
            )
        stuck: List[str] = []
        for name in sorted(cluster.engines):
            engine = cluster.engines[name]
            stuck.extend(engine.stuck_messages())
        if stuck:
            self._violate(
                "drain-no-stuck",
                f"{len(stuck)} message(s) non-terminal at drain: "
                + "; ".join(stuck[:6])
                + ("; ..." if len(stuck) > 6 else ""),
                now,
            )
        for name in sorted(cluster.machines):
            for nic in cluster.machines[name].nics:
                live = [
                    t
                    for t in nic._pending
                    if not t.aborted and t.t_tx_done is None
                ]
                if live:
                    self._violate(
                        "nic-tx-sanity",
                        f"{nic.qualified_name} still holds "
                        f"{len(live)} undrained transfer(s) at drain",
                        now,
                    )

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic counters (for soak reports and tests)."""
        return {
            "checks_performed": self.checks_performed,
            "duplicates_seen": self.duplicates_seen,
            "messages_tracked": len(self._ledgers),
        }


#: the shared disabled monitor — the default for every engine/NIC/injector
NULL_INVARIANTS = NullInvariantMonitor()

__all__ = [
    "DEFAULT_TRAIL_DEPTH",
    "InvariantMonitor",
    "InvariantViolation",
    "NullInvariantMonitor",
    "NULL_INVARIANTS",
]
