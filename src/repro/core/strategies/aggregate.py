"""Aggregation on the fastest rail — Fig. 3's winning eager policy.

Paper §II-C: "it is more efficient to aggregate the messages and to send
them over the fastest available network instead of using the entire set
of network resources" (ref [4]).  Waiting eager packets to the same
destination are packed into one wire packet (gather/scatter hardware
permitting, at a small per-segment cost) and sent over one rail.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.packets import Message, TransferMode
from repro.core.strategies.base import Strategy
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError


class AggregateStrategy(Strategy):
    """Aggregate same-destination eager packets onto one rail.

    Parameters
    ----------
    rail:
        Pin the rail by technology or NIC name (the Fig. 3 "aggregated
        over Myri-10G"/"over Quadrics" series).  ``None`` picks the
        fastest *available* rail per batch, preferring idle rails.
    """

    name = "aggregate"

    def __init__(self, rail: Optional[str] = None, rdv_threshold: Optional[int] = None) -> None:
        super().__init__(rdv_threshold=rdv_threshold)
        self.rail = rail

    # ------------------------------------------------------------------ #

    def _pick_rail(self, dest: str, size: int) -> Nic:
        rails = self.rails_to(dest)
        if self.rail is not None:
            for nic in rails:
                if self.rail in (nic.profile.name, nic.name):
                    return nic
            raise ConfigurationError(
                f"no rail {self.rail!r} towards {dest}; have "
                f"{[n.name for n in rails]}"
            )
        idle = [n for n in rails if n.is_idle]
        pool = idle or rails
        return min(
            pool,
            key=lambda n: (n.busy_until - n.sim.now) + n.profile.eager_oneway(size),
        )

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        scheduler = self.engine.scheduler
        while True:
            msg = scheduler.peek_ready()
            if msg is None:
                return
            if msg.mode is TransferMode.RENDEZVOUS:
                scheduler.pop_ready()
                self.engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
                continue
            batch = self._gather_batch(msg)
            if batch is None:
                return  # rail busy; retry on the NIC-idle event
            nic, msgs = batch
            for m in msgs:
                scheduler.remove(m)
            self.engine.submit_aggregated_eager(msgs, nic)

    def _gather_batch(self, head: Message):
        """Head message plus every queued same-destination eager message
        that fits an aggregated packet; the rail is picked *afterwards*,
        by the batch's total size (the size that actually travels)."""
        assert self.engine is not None
        rails = self.rails_to(head.dest)
        limit = min(
            min(n.profile.max_aggregation, n.profile.eager_limit) for n in rails
        )
        if head.size > limit:
            # Cannot aggregate something larger than a packet; ship alone.
            nic = self._pick_rail(head.dest, head.size)
            if self.rail is None and not nic.is_idle:
                return None
            return nic, [head]
        batch: List[Message] = [head]
        total = head.size
        for m in self.engine.scheduler.iter_ready():
            if m is head or m.dest != head.dest:
                continue
            if m.mode is TransferMode.RENDEZVOUS:
                continue
            if total + m.size > limit:
                continue
            batch.append(m)
            total += m.size
        nic = self._pick_rail(head.dest, total)
        if self.rail is None and not nic.is_idle:
            return None
        return nic, batch

    def plan_rdv_data(self, msg: Message):
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult

        nic = self._pick_rail(msg.dest, msg.size)
        return RailPlan(
            nics=[nic],
            sizes=[msg.size],
            predicted_completion=0.0,
            split=SplitResult(sizes=[msg.size], predicted_times=[0.0], iterations=0),
        )
