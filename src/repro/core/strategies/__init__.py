"""Optimization strategies — the NewMadeleine plug-ins (paper §III-B).

"The features proposed in this article are mainly organized around the
implementation of a new NewMadeleine optimization strategy which actually
is a plug-in called to gather the data requests and interrogated by the
lower layer in order to know what to do at the appropriate time."

The strategy is invoked at three moments:

* when the scheduler activates on freshly enqueued packets, and when a
  NIC becomes idle (:meth:`Strategy.schedule_outlist`);
* just before managing the emission of an eager packet (folded into
  ``schedule_outlist``: the out-list holds the eager packets to emit);
* when a rendezvous acknowledgement allows the data transfer
  (:meth:`Strategy.plan_rdv_data`).

Implementations, from the paper's baselines to its contribution:

========================  ====================================================
``single_rail``           everything on one fixed rail (Fig. 8 "Myri-10G" /
                          "Quadrics" series)
``round_robin``           rails alternate per message, no splitting
``greedy``                "when a NIC becomes idle, it looks after the next
                          communication" — Fig. 3's dynamically balanced
``aggregate``             aggregate eager packets onto the fastest available
                          rail (Fig. 3's winner; ref [4])
``iso_split``             equal-size chunks over every rail (Fig. 8 Iso-split)
``static_ratio``          OpenMPI-style fixed bandwidth-ratio split (§II-A)
``hetero_split``          sampling + idle-prediction + dichotomy split —
                          THE paper's strategy (Fig. 8 Hetero-split)
``multicore_split``       hetero_split + eager chunks offloaded to idle cores
                          through PIOMan/Marcel (Figs. 7/9, §III-D)
``adaptive``              the full §I vision: aggregate queued same-dest
                          packets OR split lone ones across cores, by state
========================  ====================================================
"""

from repro.core.strategies.base import Strategy
from repro.core.strategies.single_rail import SingleRailStrategy, RoundRobinStrategy
from repro.core.strategies.greedy import GreedyStrategy
from repro.core.strategies.aggregate import AggregateStrategy
from repro.core.strategies.splitting import (
    IsoSplitStrategy,
    StaticRatioStrategy,
    HeteroSplitStrategy,
    striped_transfer_time,
)
from repro.core.strategies.multicore import MulticoreSplitStrategy
from repro.core.strategies.adaptive import AdaptiveStrategy

from typing import Dict, Type

strategy_registry: Dict[str, Type[Strategy]] = {
    "single_rail": SingleRailStrategy,
    "round_robin": RoundRobinStrategy,
    "greedy": GreedyStrategy,
    "aggregate": AggregateStrategy,
    "iso_split": IsoSplitStrategy,
    "static_ratio": StaticRatioStrategy,
    "hetero_split": HeteroSplitStrategy,
    "multicore_split": MulticoreSplitStrategy,
    "adaptive": AdaptiveStrategy,
}


def make_strategy(name: str, **kwargs) -> Strategy:
    """Build a strategy by registry name."""
    try:
        cls = strategy_registry[name.lower()]
    except KeyError:
        known = ", ".join(sorted(strategy_registry))
        raise KeyError(f"unknown strategy {name!r}; known: {known}") from None
    return cls(**kwargs)


__all__ = [
    "Strategy",
    "SingleRailStrategy",
    "RoundRobinStrategy",
    "GreedyStrategy",
    "AggregateStrategy",
    "IsoSplitStrategy",
    "StaticRatioStrategy",
    "HeteroSplitStrategy",
    "MulticoreSplitStrategy",
    "AdaptiveStrategy",
    "strategy_registry",
    "make_strategy",
    "striped_transfer_time",
]
