"""Strategy plug-in interface and shared helpers."""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.core.packets import Message, TransferMode
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError, SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import NmadEngine
    from repro.core.prediction import CompletionPredictor, RailPlan


class Strategy:
    """Base class of every optimization strategy.

    Subclasses override some of:

    * :meth:`schedule_outlist` — REQUIRED: drain (part of) the engine's
      out-list by submitting eager packets / starting rendezvous;
    * :meth:`plan_rdv_data` — rails + chunk sizes for a rendezvous data
      phase (default: everything on the fastest rail);
    * :meth:`choose_mode` — eager vs rendezvous (default: sampled
      threshold when a predictor exists, driver eager limit otherwise);
    * :meth:`control_rail` — rail for REQ/ACK control packets.

    Parameters
    ----------
    rdv_threshold:
        Force the eager/rendezvous boundary (bytes).  ``None`` derives it
        from sampling (or the driver limit without sampling).
    """

    name = "base"
    #: does this strategy require sampled estimators (a predictor)?
    needs_sampling = False

    def __init__(self, rdv_threshold: Optional[int] = None) -> None:
        if rdv_threshold is not None and rdv_threshold < 1:
            raise ConfigurationError(f"bad rdv threshold: {rdv_threshold}")
        self.rdv_threshold = rdv_threshold
        self.engine: Optional["NmadEngine"] = None

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, engine: "NmadEngine") -> None:
        self.engine = engine
        if self.needs_sampling and engine.predictor is None:
            raise ConfigurationError(
                f"{type(self).__name__} needs sampling profiles; build the "
                "engine with estimators (ClusterBuilder does this by default)"
            )

    @property
    def obs(self):
        """The engine's observability hub (NULL_OBS until attached)."""
        if self.engine is None:
            from repro.obs import NULL_OBS

            return NULL_OBS
        return self.engine.obs

    @property
    def predictor(self) -> "CompletionPredictor":
        assert self.engine is not None, "strategy not attached"
        if self.engine.predictor is None:
            raise ConfigurationError(f"{type(self).__name__}: no predictor")
        return self.engine.predictor

    # -- rail helpers -------------------------------------------------------

    def rails_to(self, dest: str, msg: Optional[Message] = None) -> List[Nic]:
        """Up rails towards ``dest``; pass ``msg`` to record avoided rails."""
        assert self.engine is not None, "strategy not attached"
        return self.engine.rails_to(dest, msg)

    def fastest_rail(self, dest: str, size: int, mode: TransferMode) -> Nic:
        """Rail with the smallest predicted completion for this transfer.

        With sampling: busy offset + sampled curve.  Without: busy offset
        + ground-truth profile (the naive knowledge a non-sampling
        strategy would hard-code from vendor datasheets)."""
        rails = self.rails_to(dest)
        if self.engine is not None and self.engine.predictor is not None:
            return min(
                rails, key=lambda n: self.engine.predictor.predict(n, size, mode)
            )

        def naive(nic: Nic) -> float:
            offset = nic.busy_until - nic.sim.now
            if mode is TransferMode.EAGER:
                return offset + nic.profile.eager_oneway(size)
            return offset + nic.profile.rdv_data_oneway(size)

        return min(rails, key=naive)

    # ------------------------------------------------------------------ #
    # decision points (the §III-B invocation moments)
    # ------------------------------------------------------------------ #

    def choose_mode(self, msg: Message) -> TransferMode:
        """Eager or rendezvous for this message."""
        rails = self.rails_to(msg.dest)
        if self.rdv_threshold is not None:
            if msg.size >= self.rdv_threshold:
                return TransferMode.RENDEZVOUS
            if any(msg.size <= n.profile.eager_limit for n in rails):
                return TransferMode.EAGER
            return TransferMode.RENDEZVOUS
        if self.engine is not None and self.engine.predictor is not None:
            # Sampled threshold of the rail that would carry the message.
            nic = self.fastest_rail(msg.dest, msg.size, TransferMode.EAGER)
            est = self.engine.predictor.estimator_for(nic)
            if msg.size <= est.eager_limit:
                return est.best_mode(msg.size)
            return TransferMode.RENDEZVOUS
        # No sampling: eager whenever some rail accepts the size.
        if any(msg.size <= n.profile.eager_limit for n in rails):
            return TransferMode.EAGER
        return TransferMode.RENDEZVOUS

    def schedule_outlist(self) -> None:
        """Drain what can be drained from the engine's out-list.

        Called on scheduler activation (new packets) and whenever a NIC
        becomes idle.  Must be idempotent under spurious calls.
        """
        raise NotImplementedError

    def plan_rdv_data(self, msg: Message) -> "RailPlan":
        """Rails and chunk sizes for a rendezvous data phase."""
        from repro.core.prediction import RailPlan, SplitResult

        nic = self.fastest_rail(msg.dest, msg.size, TransferMode.RENDEZVOUS)
        return RailPlan(
            nics=[nic],
            sizes=[msg.size],
            predicted_completion=0.0,
            split=SplitResult(sizes=[msg.size], predicted_times=[0.0], iterations=0),
        )

    def control_rail(self, msg: Message) -> Nic:
        """Rail for REQ/ACK control packets (default: lowest predicted
        control latency — in practice the lowest-latency idle rail)."""
        return self.fastest_rail(msg.dest, 0, TransferMode.EAGER)

    # ------------------------------------------------------------------ #
    # shared submission helpers
    # ------------------------------------------------------------------ #

    def submit_whole_eager(self, msg: Message, nic: Nic) -> None:
        """Send a message as one eager packet on one rail."""
        assert self.engine is not None
        if msg.size > nic.profile.eager_limit:
            raise SchedulingError(
                f"msg {msg.msg_id} ({msg.size}B) exceeds {nic.profile.name} "
                f"eager limit"
            )
        self.engine.submit_eager_chunks(msg, [(nic, msg.size)])
