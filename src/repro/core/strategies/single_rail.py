"""Single-rail and round-robin baselines.

``single_rail`` is the degenerate multirail usage most programming
environments default to (paper §I: "most programming environments simply
assign each communication flow to a single network link") and provides
the Fig. 8 "Myri-10G" / "Quadrics" reference series.

``round_robin`` alternates whole messages across rails — multiplexing
without splitting, the simplest way to use several links at once.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packets import Message, TransferMode
from repro.core.strategies.base import Strategy
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError


class SingleRailStrategy(Strategy):
    """Everything travels on one rail.

    Parameters
    ----------
    rail:
        Technology name (``"myri10g"``) or NIC name; ``None`` picks the
        rail with the best sampled large-message bandwidth at attach time
        (or the best ground-truth DMA rate without sampling).
    """

    name = "single_rail"

    def __init__(self, rail: Optional[str] = None, rdv_threshold: Optional[int] = None) -> None:
        super().__init__(rdv_threshold=rdv_threshold)
        self.rail = rail

    def _rail_for(self, dest: str, msg: Optional[Message] = None) -> Nic:
        rails = self.rails_to(dest, msg)
        if self.rail is None:
            return max(rails, key=lambda n: n.profile.dma_rate)
        for nic in rails:
            if self.rail in (nic.profile.name, nic.name):
                return nic
        # The pinned rail exists but is down: fail over to the best
        # surviving rail rather than wedging the send.
        assert self.engine is not None
        for nic in self.engine.all_rails_to(dest):
            if self.rail in (nic.profile.name, nic.name):
                if msg is not None:
                    msg.note_rail_avoided(
                        nic.qualified_name, "down (failover)", nic.sim.now
                    )
                return max(rails, key=lambda n: n.profile.dma_rate)
        raise ConfigurationError(
            f"no rail {self.rail!r} towards {dest}; have "
            f"{[n.name for n in rails]}"
        )

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        scheduler = self.engine.scheduler
        while (msg := scheduler.pop_ready()) is not None:
            nic = self._rail_for(msg.dest, msg)
            if msg.mode is TransferMode.RENDEZVOUS:
                self.engine.start_rendezvous(msg, control_nic=nic)
            else:
                self.submit_whole_eager(msg, nic)

    def plan_rdv_data(self, msg: Message):
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult

        nic = self._rail_for(msg.dest, msg)
        return RailPlan(
            nics=[nic],
            sizes=[msg.size],
            predicted_completion=0.0,
            split=SplitResult(sizes=[msg.size], predicted_times=[0.0], iterations=0),
        )

    def control_rail(self, msg: Message) -> Nic:
        return self._rail_for(msg.dest)


class RoundRobinStrategy(Strategy):
    """Whole messages alternate across rails, in NIC order."""

    name = "round_robin"

    def __init__(self, rdv_threshold: Optional[int] = None) -> None:
        super().__init__(rdv_threshold=rdv_threshold)
        self._next = 0

    def _take_rail(self, dest: str) -> Nic:
        rails = self.rails_to(dest)
        nic = rails[self._next % len(rails)]
        self._next += 1
        return nic

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        scheduler = self.engine.scheduler
        while (msg := scheduler.pop_ready()) is not None:
            if msg.mode is TransferMode.RENDEZVOUS:
                # Control packets ride the first rail; the rotation is
                # reserved for the payloads (plan_rdv_data below).
                self.engine.start_rendezvous(
                    msg, control_nic=self.rails_to(msg.dest)[0]
                )
                continue
            nic = self._take_rail(msg.dest)
            if msg.size <= nic.profile.eager_limit:
                self.submit_whole_eager(msg, nic)
            else:  # this rail cannot take it eagerly; rendezvous instead
                self.engine.start_rendezvous(
                    msg, control_nic=self.rails_to(msg.dest)[0]
                )

    def plan_rdv_data(self, msg: Message):
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult

        nic = self._take_rail(msg.dest)
        return RailPlan(
            nics=[nic],
            sizes=[msg.size],
            predicted_completion=0.0,
            split=SplitResult(sizes=[msg.size], predicted_times=[0.0], iterations=0),
        )
