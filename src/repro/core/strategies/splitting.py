"""Rendezvous splitting strategies: iso, static-ratio, and hetero (sampled).

These are the Fig. 8 series:

* :class:`IsoSplitStrategy` — equal-size chunks over every rail
  (Fig. 1b): optimal only for homogeneous rails; on Myri+Quadrics the
  fast rail idles while the slow chunk drains (§IV-A: ≈670 µs at 4 MiB).
* :class:`StaticRatioStrategy` — OpenMPI's approach (§II-A): one fixed
  ratio from the rails' *maximum* bandwidths, whatever the message size —
  "a split ratio for a 8 MB message may not fit a 256 KB message".
* :class:`HeteroSplitStrategy` — the paper's contribution: per-message
  equal-*time* split from sampled curves plus NIC idle prediction and
  rail-subset selection (Figs. 1c/2, §II-B).

Eager packets are not split by any of these (that needs idle cores — see
:mod:`repro.core.strategies.multicore`); they ride the fastest rail.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.packets import Message, TransferMode
from repro.core.strategies.base import Strategy
from repro.networks.nic import Nic
from repro.util.errors import ConfigurationError


def striped_transfer_time(
    estimators: Sequence["NicEstimator"],
    size: int,
    mode: Optional[TransferMode] = None,
) -> float:
    """Predicted one-hop time of ``size`` bytes striped across rails.

    The planning primitive the collective-algorithm cost models share
    with :class:`HeteroSplitStrategy`: an idle-fabric equal-time
    waterfill over the sampled curves — i.e. "what does one hop cost
    when the engine hetero-splits it across these rails?".  ``mode``
    defaults to the paper's eager/rendezvous choice at the slowest
    rail's threshold, matching what the engine will actually do.
    """
    from repro.core.split import waterfill_split

    if not estimators:
        raise ConfigurationError("striped_transfer_time needs >= 1 estimator")
    if size <= 0:
        return 0.0
    if mode is None:
        threshold = min(est.rdv_threshold() for est in estimators)
        mode = (
            TransferMode.RENDEZVOUS if size > threshold else TransferMode.EAGER
        )
    if mode is TransferMode.EAGER:
        # Eager packets ride one rail (no eager splitting without idle
        # cores); the fastest sampled curve is the hop cost.
        return min(est.transfer_time(size, mode) for est in estimators)
    rails = [(est, 0.0) for est in estimators]
    return waterfill_split(size, rails, mode).predicted_completion


class _SplitBase(Strategy):
    """Shared eager path: whole message on the fastest rail."""

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        scheduler = self.engine.scheduler
        while (msg := scheduler.pop_ready()) is not None:
            if msg.mode is TransferMode.RENDEZVOUS:
                self.engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
            else:
                nic = self.fastest_rail(msg.dest, msg.size, TransferMode.EAGER)
                self.submit_whole_eager(msg, nic)


class IsoSplitStrategy(_SplitBase):
    """Equal-size chunks over all rails (Fig. 1b / Fig. 8 "Iso-split")."""

    name = "iso_split"

    def plan_rdv_data(self, msg: Message):
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult, equal_split

        rails = self.rails_to(msg.dest, msg)
        sizes = equal_split(msg.size, len(rails))
        used = [(n, s) for n, s in zip(rails, sizes) if s > 0]
        return RailPlan(
            nics=[n for n, _ in used],
            sizes=[s for _, s in used],
            predicted_completion=0.0,
            split=SplitResult(
                sizes=[s for _, s in used],
                predicted_times=[0.0] * len(used),
                iterations=0,
            ),
        )


class StaticRatioStrategy(_SplitBase):
    """Fixed bandwidth-ratio split, computed once (OpenMPI-style, §II-A).

    The weights come from the sampled large-message plateaus — the "maximum
    available bandwidth of each network" — and never adapt to the actual
    message size or to rail occupancy, which is precisely the imprecision
    the paper criticizes.
    """

    name = "static_ratio"
    needs_sampling = True

    def plan_rdv_data(self, msg: Message):
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult, ratio_split

        rails = self.rails_to(msg.dest, msg)
        weights = [
            self.predictor.estimator_for(n).plateau_bandwidth() for n in rails
        ]
        sizes = ratio_split(msg.size, weights)
        used = [(n, s) for n, s in zip(rails, sizes) if s > 0]
        return RailPlan(
            nics=[n for n, _ in used],
            sizes=[s for _, s in used],
            predicted_completion=0.0,
            split=SplitResult(
                sizes=[s for _, s in used],
                predicted_times=[0.0] * len(used),
                iterations=0,
            ),
        )


class HeteroSplitStrategy(_SplitBase):
    """THE paper's strategy: sampled equal-time split with idle prediction.

    Parameters
    ----------
    max_rails:
        Cap on the number of rails per message (``None`` = all available).
    use_idle_prediction:
        When False, busy offsets are ignored (ablation A3) — the split
        only balances the sampled transfer times.
    """

    name = "hetero_split"
    needs_sampling = True

    def __init__(
        self,
        rdv_threshold: Optional[int] = None,
        max_rails: Optional[int] = None,
        use_idle_prediction: bool = True,
    ) -> None:
        super().__init__(rdv_threshold=rdv_threshold)
        if max_rails is not None and max_rails < 1:
            raise ConfigurationError(f"bad max_rails: {max_rails}")
        self.max_rails = max_rails
        self.use_idle_prediction = use_idle_prediction
        # (source predictor, blinded wrapper) — rebuilt only when the
        # engine's predictor is swapped (e.g. Cluster.resample), so the
        # blinded predictor keeps its split-decision cache across calls.
        self._blind_cache: Optional[tuple] = None

    def _blind_predictor(self):
        """Occupancy-blind view of the engine's predictor (ablation A3)."""
        import repro.core.prediction as prediction

        source = self.predictor
        if self._blind_cache is None or self._blind_cache[0] is not source:

            class _Blind(prediction.CompletionPredictor):
                def busy_offset(self, nic: Nic) -> float:
                    return 0.0

            self._blind_cache = (source, _Blind(source.estimators))
        return self._blind_cache[1]

    def plan_rdv_data(self, msg: Message):
        rails = self.rails_to(msg.dest, msg)
        calib = self.engine.calib
        if calib.on:
            # Drift defense: the calibration controller walks the
            # fallback ladder and delegates back to hetero_plan while
            # the profiles are trusted (docs/calibration.md).
            return calib.plan_rdv_data(self, msg, rails)
        return self.hetero_plan(msg, rails)

    def hetero_plan(self, msg: Message, rails):
        """The paper's full-trust split (also the calibration ladder's
        FULL level): subset selection + dichotomy over sampled curves."""
        predictor = self.predictor
        if not self.use_idle_prediction:
            # Ablation: blind the planner to NIC occupancy.
            predictor = self._blind_predictor()
        return predictor.plan(
            rails, msg.size, TransferMode.RENDEZVOUS, max_rails=self.max_rails
        )
