"""Multicore eager splitting — the paper's §III-D mechanism (Figs. 4c/7).

Extends :class:`HeteroSplitStrategy`: *eager* messages may also be split
across rails, with each chunk's CPU-consuming PIO copy submitted from a
different core.  The strategy "splits the data in min{number of idle
NICs, number of idle cores} chunks at most, each of them is then sent
over a different NIC from a different core" (§III-B).

The chunk plan charges the offloading cost TO — the paper's equation (1):

    T(size) = TO + max(TD(size·ratio, N1), TD(size·(1−ratio), N2))

so tiny messages (where TO dominates) are *not* split, matching the
Fig. 9 crossover around 4 KiB.  Submissions go through PIOMan's
to-be-sent list: the first chunk stays on the issuing core, the others
are signalled to idle cores (3 µs) or preempt computing threads (6 µs).
"""

from __future__ import annotations

from typing import Optional

from repro.core.packets import Message, TransferMode
from repro.core.strategies.splitting import HeteroSplitStrategy
from repro.util.errors import ConfigurationError


class MulticoreSplitStrategy(HeteroSplitStrategy):
    """hetero_split + eager chunks offloaded to idle cores.

    Parameters
    ----------
    offload_cost:
        TO of equation (1): µs charged (in the *plan*) per additional
        rail; the actual signalling cost paid at run time comes from the
        topology (3 µs / 6 µs).  Defaults to the topology's signal cost.
    min_split:
        Never split eager messages smaller than this (guards the planner
        against pathological chunking; the TO term already pushes the
        crossover to ~4 KiB).
    allow_preempt:
        May chunk pickups preempt computing threads (6 µs) or only use
        idle cores.
    """

    name = "multicore_split"
    needs_sampling = True

    def __init__(
        self,
        rdv_threshold: Optional[int] = None,
        max_rails: Optional[int] = None,
        use_idle_prediction: bool = True,
        offload_cost: Optional[float] = None,
        min_split: int = 256,
        allow_preempt: bool = True,
    ) -> None:
        super().__init__(
            rdv_threshold=rdv_threshold,
            max_rails=max_rails,
            use_idle_prediction=use_idle_prediction,
        )
        if offload_cost is not None and offload_cost < 0:
            raise ConfigurationError(f"negative offload cost: {offload_cost}")
        if min_split < 0:
            raise ConfigurationError(f"negative min_split: {min_split}")
        self.offload_cost = offload_cost
        self.min_split = min_split
        self.allow_preempt = allow_preempt

    # ------------------------------------------------------------------ #

    def _to(self) -> float:
        """The planning TO: explicit override or the topology's 3 µs."""
        if self.offload_cost is not None:
            return self.offload_cost
        assert self.engine is not None
        return self.engine.machine.topology.signal_cost_us

    def choose_mode(self, msg: Message) -> TransferMode:
        """Unlike single-rail strategies, chunked eager sends can carry a
        message larger than any one rail's eager limit — up to the *sum*
        of the limits (one chunk per rail)."""
        base = super().choose_mode(msg)
        if base is TransferMode.RENDEZVOUS:
            below_threshold = (
                self.rdv_threshold is not None and msg.size < self.rdv_threshold
            )
            combined_limit = sum(
                n.profile.eager_limit for n in self.rails_to(msg.dest)
            )
            if below_threshold and msg.size <= combined_limit:
                return TransferMode.EAGER
        return base

    def _fallback_single(self, msg: Message) -> None:
        """Whole message on the fastest rail — or rendezvous when it no
        longer fits a single eager packet."""
        assert self.engine is not None
        nic = self.fastest_rail(msg.dest, msg.size, TransferMode.EAGER)
        if msg.size <= nic.profile.eager_limit:
            self.submit_whole_eager(msg, nic)
        else:
            self.engine.start_rendezvous(msg, control_nic=self.control_rail(msg))

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        engine = self.engine
        scheduler = engine.scheduler
        while (msg := scheduler.pop_ready()) is not None:
            if msg.mode is TransferMode.RENDEZVOUS:
                engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
                continue
            self._emit_eager(msg)

    def _emit_eager(self, msg: Message) -> None:
        assert self.engine is not None
        engine = self.engine
        issuing_core = engine.app_core
        if msg.size < self.min_split:
            self._fallback_single(msg)
            return
        # §III-B: at most min{#idle NICs, #idle cores} chunks.  The
        # issuing core counts as available — it submits the first chunk.
        rails = [
            n
            for n in self.rails_to(msg.dest, msg)
            if msg.size <= n.profile.eager_limit or n.is_idle
        ]
        idle_rails = [n for n in rails if n.is_idle] or rails
        cores_avail = 1 + len(
            [
                c
                for c, preempt in engine.pioman.available_cores(exclude=issuing_core)
                if self.allow_preempt or not preempt
            ]
        )
        max_rails = min(len(idle_rails), cores_avail)
        if self.max_rails is not None:
            max_rails = min(max_rails, self.max_rails)
        if max_rails <= 1:
            self._fallback_single(msg)
            return
        plan = self.predictor.plan(
            idle_rails,
            msg.size,
            TransferMode.EAGER,
            max_rails=max_rails,
            fixed_cost=self._to(),
        )
        # Respect per-rail eager limits; bail out to single rail if the
        # plan violates one (rare: tiny limits + huge message).
        for nic, chunk in zip(plan.nics, plan.sizes):
            if chunk > nic.profile.eager_limit:
                self._fallback_single(msg)
                return
        if len(plan.nics) == 1:
            nic = plan.nics[0]
            if msg.size <= nic.profile.eager_limit:
                self.submit_whole_eager(msg, nic)
            else:
                self.engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
            return
        obs = self.obs
        if obs.on:
            node = engine.machine.name
            obs.metrics.counter(f"strategy.{node}.splits").inc()
            if obs.tracer.enabled:
                obs.tracer.instant(
                    node, "strategy", "split", engine.sim.now, cat="decision",
                    args={
                        "msg": msg.msg_id,
                        "size": msg.size,
                        "rails": [n.qualified_name for n in plan.nics],
                        "chunk_sizes": list(plan.sizes),
                        "iterations": plan.split.iterations,
                        "to_us": self._to(),
                    },
                )
        engine.submit_eager_chunks(
            msg,
            list(zip(plan.nics, plan.sizes)),
            offload=True,
            allow_preempt=self.allow_preempt,
        )
