"""Greedy dynamic balancing — the Fig. 3 baseline the paper improves on.

Paper §II-C: "a basic greedy balancing of the messages — when a NIC
becomes idle, it looks after the next communication".  Each message goes
whole onto the first idle rail (fastest first); when every rail is busy
the message waits in the out-list and the next NIC-idle event drains it.

No aggregation and no splitting: with several small messages this
maximizes the number of CPU-consuming PIO transfers issued from the
single application core — which is exactly why Fig. 3 shows it losing to
aggregation on the fastest rail.
"""

from __future__ import annotations

from typing import List

from repro.core.packets import TransferMode
from repro.core.strategies.base import Strategy
from repro.networks.nic import Nic


class GreedyStrategy(Strategy):
    """One whole message per idle NIC, fastest idle NIC first."""

    name = "greedy"

    def _idle_rails(self, dest: str) -> List[Nic]:
        rails = [n for n in self.rails_to(dest) if n.is_idle]
        rails.sort(key=lambda n: n.profile.eager_oneway(1), reverse=False)
        # Prefer the highest-throughput idle rail for the next packet.
        rails.sort(key=lambda n: n.profile.pio_rate, reverse=True)
        return rails

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        scheduler = self.engine.scheduler
        while True:
            msg = scheduler.peek_ready()
            if msg is None:
                return
            if msg.mode is TransferMode.RENDEZVOUS:
                scheduler.pop_ready()
                self.engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
                continue
            idle = [
                n
                for n in self._idle_rails(msg.dest)
                if msg.size <= n.profile.eager_limit
            ]
            if not idle:
                return  # every capable rail busy; wait for a NIC-idle event
            scheduler.pop_ready()
            self.submit_whole_eager(msg, idle[0])
