"""The paper's full §I vision in one plug-in.

"Depending on the state and capabilities of the underlying networks,
multiple packets with the same destination may be aggregated and handled
by a single core, or they may be sent in parallel by different cores over
separate NICs."

:class:`AdaptiveStrategy` combines the mechanisms of this repository:

* several queued small messages to one destination → **aggregate** them
  into one packet on the best-predicted rail (Fig. 3's winning move);
* a single medium eager message → **multicore split** it across rails
  with offloaded PIO copies when equation (1) predicts a win (Fig. 9);
* large messages → rendezvous with **hetero-split** and idle prediction
  (Figs. 1c/2/8).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.packets import Message, TransferMode
from repro.core.strategies.multicore import MulticoreSplitStrategy
from repro.networks.nic import Nic


class AdaptiveStrategy(MulticoreSplitStrategy):
    """Aggregation + multicore splitting + hetero rendezvous, state-driven.

    Parameters (beyond :class:`MulticoreSplitStrategy`'s)
    ------------------------------------------------------
    aggregation_limit:
        Largest aggregated packet to build; defaults to the rails'
        common bound.
    """

    name = "adaptive"
    needs_sampling = True

    def __init__(self, aggregation_limit: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.aggregation_limit = aggregation_limit
        self.aggregations = 0
        self.splits = 0

    # ------------------------------------------------------------------ #

    def schedule_outlist(self) -> None:
        assert self.engine is not None
        engine = self.engine
        scheduler = engine.scheduler
        while (msg := scheduler.peek_ready()) is not None:
            if msg.mode is TransferMode.RENDEZVOUS:
                scheduler.pop_ready()
                engine.start_rendezvous(msg, control_nic=self.control_rail(msg))
                continue
            batch = self._gather_batch(msg)
            if len(batch) >= 2:
                # Several waiting packets, one destination: aggregate and
                # let a single core handle them (paper §I, first branch).
                for m in batch:
                    scheduler.remove(m)
                nic = self._aggregation_rail(msg.dest, sum(m.size for m in batch))
                engine.submit_aggregated_eager(batch, nic)
                self.aggregations += 1
                obs = self.obs
                if obs.on:
                    node = engine.machine.name
                    obs.metrics.counter(f"strategy.{node}.aggregations").inc()
                    if obs.tracer.enabled:
                        obs.tracer.instant(
                            node, "strategy", "aggregate", engine.sim.now,
                            cat="decision",
                            args={
                                "dest": msg.dest,
                                "messages": [m.msg_id for m in batch],
                                "total_bytes": sum(m.size for m in batch),
                                "rail": nic.qualified_name,
                            },
                        )
            else:
                # A lone packet: parallel send over separate NICs from
                # different cores when the estimator says it pays off.
                scheduler.pop_ready()
                rails_before = len(msg.rails_used)
                self._emit_eager(msg)
                if len(msg.rails_used) > 1:
                    self.splits += 1
                    if self.obs.on:
                        self.obs.metrics.counter(
                            f"strategy.{engine.machine.name}.splits"
                        ).inc()
                del rails_before

    # ------------------------------------------------------------------ #

    def _limit_for(self, dest: str) -> int:
        rails = self.rails_to(dest)
        limit = min(
            min(n.profile.max_aggregation, n.profile.eager_limit) for n in rails
        )
        if self.aggregation_limit is not None:
            limit = min(limit, self.aggregation_limit)
        return limit

    def _gather_batch(self, head: Message) -> List[Message]:
        """Head plus queued same-destination eager messages that fit one
        aggregated packet (empty-headed batches never happen: the head is
        always included, so a returned batch of 1 means 'do not aggregate')."""
        assert self.engine is not None
        limit = self._limit_for(head.dest)
        if head.size > limit:
            return [head]
        batch = [head]
        total = head.size
        for m in self.engine.scheduler.iter_ready():
            if m is head or m.dest != head.dest:
                continue
            if m.mode is TransferMode.RENDEZVOUS:
                continue
            if total + m.size > limit:
                continue
            batch.append(m)
            total += m.size
        return batch

    def _aggregation_rail(self, dest: str, total: int) -> Nic:
        """Best-predicted rail for the aggregated packet, busy offsets in."""
        predictor = self.predictor
        return min(
            self.rails_to(dest),
            key=lambda n: predictor.predict(n, total, TransferMode.EAGER),
        )
