"""Network sampling: measure each driver at powers of two (paper §III-C).

"Instead of simply relying on the usual bandwidth and latency parameters
provided by the vendors, an accurate profile of each NIC is performed at
the initialization of NewMadeleine.  Such a profile is measured with the
help of a set of benchmarks that were designed for that purpose."

The sampler builds a *private* two-node testbed per driver inside its own
simulator and measures, for each power-of-two size:

* the **eager** one-way time (PIO path, up to the driver's eager limit);
* the **DMA** one-way time (rendezvous data, handshake excluded);
* the **control** packet one-way time (from which the rendezvous
  handshake is predicted).

Because the strategy later drives the *same* simulated NIC models, the
measure-then-predict feedback loop of the real system is preserved; the
only estimator error left is interpolation between grid points — which
ablation A2 quantifies.

Profiles persist to JSON via :class:`ProfileStore`, mirroring the real
``nmad`` sampling files written at install time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.estimator import NicEstimator, SampleTable
from repro.hardware.machine import Machine
from repro.networks.drivers.base import Driver
from repro.networks.nic import Nic
from repro.networks.transfer import Transfer, TransferKind
from repro.networks.wire import Wire
from repro.pioman.progress import PiomanEngine
from repro.simtime import Simulator
from repro.util.errors import SamplingError
from repro.util.stats import RunningStats
from repro.util.units import KiB, MiB, pow2_sizes


@dataclass
class NicSample:
    """Raw sampling output for one driver."""

    name: str
    eager_sizes: List[int]
    eager_times: List[float]
    dma_sizes: List[int]
    dma_times: List[float]
    control_oneway: float
    eager_limit: int
    repetitions: int = 1

    def to_estimator(self) -> NicEstimator:
        return NicEstimator(
            name=self.name,
            eager=SampleTable(self.eager_sizes, self.eager_times),
            dma=SampleTable(self.dma_sizes, self.dma_times),
            control_oneway=self.control_oneway,
            eager_limit=self.eager_limit,
        )


class NetworkSampler:
    """Runs the §III-C sampling benchmarks for a driver.

    Parameters
    ----------
    eager_sizes / dma_sizes:
        Measurement grids; default to powers of two (4 B up to the eager
        limit, and 4 KiB – 16 MiB respectively).
    repetitions:
        Measurements per point, aggregated by median.  The simulator is
        deterministic so the default of 1 is exact; higher values exist
        for parity with the real benchmarks (and for subclasses that
        inject noise).
    """

    def __init__(
        self,
        eager_sizes: Optional[Sequence[int]] = None,
        dma_sizes: Optional[Sequence[int]] = None,
        repetitions: int = 1,
    ) -> None:
        if repetitions < 1:
            raise SamplingError(f"repetitions must be >= 1, got {repetitions}")
        self._eager_sizes = list(eager_sizes) if eager_sizes is not None else None
        self._dma_sizes = (
            list(dma_sizes) if dma_sizes is not None else pow2_sizes(4 * KiB, 16 * MiB)
        )
        self.repetitions = repetitions

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def sample(self, driver: Driver) -> NicSample:
        """Measure one driver on a fresh private testbed."""
        eager_sizes = (
            self._eager_sizes
            if self._eager_sizes is not None
            else pow2_sizes(4, driver.profile.eager_limit)
        )
        bad = [s for s in eager_sizes if s > driver.profile.eager_limit]
        if bad:
            raise SamplingError(
                f"eager grid exceeds {driver.technology} limit: {bad}"
            )
        eager_times = [
            self._measure(driver, TransferKind.EAGER, s) for s in eager_sizes
        ]
        dma_times = [
            self._measure(driver, TransferKind.RDV_DATA, s) for s in self._dma_sizes
        ]
        control = self._measure(driver, TransferKind.RDV_REQ, 0)
        return NicSample(
            name=driver.technology,
            eager_sizes=list(eager_sizes),
            eager_times=eager_times,
            dma_sizes=list(self._dma_sizes),
            dma_times=dma_times,
            control_oneway=control,
            eager_limit=driver.profile.eager_limit,
            repetitions=self.repetitions,
        )

    # ------------------------------------------------------------------ #
    # one measurement point
    # ------------------------------------------------------------------ #

    def _measure(self, driver: Driver, kind: TransferKind, size: int) -> float:
        stats = RunningStats()
        for _ in range(self.repetitions):
            stats.add(self._one_shot(driver, kind, size))
        return stats.median()

    def _one_shot(self, driver: Driver, kind: TransferKind, size: int) -> float:
        sim = Simulator()
        node_a = Machine(sim, "sampler0")
        node_b = Machine(sim, "sampler1")
        nic_a = Nic(node_a, driver, name="probe")
        nic_b = Nic(node_b, driver, name="probe")
        self._prepare_probe(nic_a, nic_b)
        Wire(nic_a, nic_b)
        PiomanEngine(node_a).bind()
        PiomanEngine(node_b).bind()
        transfer = Transfer(kind=kind, size=size, msg_id=0)
        nic_a.submit(transfer, node_a.cores[0])
        sim.run()
        if transfer.t_complete is None:
            raise SamplingError(
                f"{driver.technology}: {kind.value} probe of {size}B never completed"
            )
        return transfer.t_complete - transfer.t_submit

    def _prepare_probe(self, nic_a: Nic, nic_b: Nic) -> None:
        """Hook: adjust the freshly built probe NICs before measuring.

        The base sampler measures pristine hardware (launch-time
        sampling).  :class:`OnlineSampler` overrides this to mirror a
        *live* NIC's unannounced state onto the probes, so a runtime
        re-sample measures the rail as it currently behaves.
        """


class OnlineSampler(NetworkSampler):
    """Runtime re-sampling of one *live* rail (calibration drift loop).

    The launch-time sampler measures factory-fresh NICs; once a rail has
    silently degraded that profile is a lie.  This sampler mirrors the
    live NIC's **silent** bandwidth factor onto the private-testbed
    probes, so the ping-pong measures the rail's *current actual* speed.
    The private simulator doubles as quiescence: in-flight traffic on
    the real cluster is untouched while the probe runs.

    Announced degradation (``bw_factor`` / ``extra_latency``) is *not*
    mirrored — the planner already compensates for it via the scaled
    estimator view; baking it into the profile would double-count.
    """

    def __init__(
        self,
        live_nic: Nic,
        eager_sizes: Optional[Sequence[int]] = None,
        dma_sizes: Optional[Sequence[int]] = None,
        repetitions: int = 1,
    ) -> None:
        super().__init__(
            eager_sizes=eager_sizes, dma_sizes=dma_sizes, repetitions=repetitions
        )
        self.live_nic = live_nic

    def _prepare_probe(self, nic_a: Nic, nic_b: Nic) -> None:
        factor = self.live_nic.silent_bw_factor
        if factor != 1.0:
            nic_a.silent_bw_factor = factor
            nic_b.silent_bw_factor = factor


class NoisySampler(NetworkSampler):
    """A sampler whose probes carry multiplicative measurement jitter.

    The simulator itself is deterministic, but *real* sampling runs are
    not — OS noise, cache state and timer granularity perturb every
    ping-pong.  This subclass models that: each probe is scaled by a
    deterministic pseudo-random factor drawn from
    ``Normal(1, jitter_pct/100)`` (clamped to stay positive), so the
    median over ``repetitions`` converges on the truth the way the real
    benchmarks' aggregation does.  Ablation A9 measures how much jitter
    the hetero-split strategy tolerates.
    """

    def __init__(
        self,
        jitter_pct: float,
        seed: int = 0,
        eager_sizes: Optional[Sequence[int]] = None,
        dma_sizes: Optional[Sequence[int]] = None,
        repetitions: int = 5,
    ) -> None:
        super().__init__(
            eager_sizes=eager_sizes, dma_sizes=dma_sizes, repetitions=repetitions
        )
        if jitter_pct < 0:
            raise SamplingError(f"negative jitter: {jitter_pct}")
        self.jitter_pct = jitter_pct
        self._seed = seed
        import numpy as np

        self._rng = np.random.default_rng(seed)

    def _one_shot(self, driver: Driver, kind: TransferKind, size: int) -> float:
        clean = super()._one_shot(driver, kind, size)
        if self.jitter_pct == 0:
            return clean
        factor = max(0.01, 1.0 + self._rng.normal(0.0, self.jitter_pct / 100.0))
        return clean * factor


class ProfileStore:
    """Named collection of :class:`NicEstimator`, persisted as JSON."""

    def __init__(self, estimators: Optional[Dict[str, NicEstimator]] = None) -> None:
        self.estimators: Dict[str, NicEstimator] = dict(estimators or {})

    def __contains__(self, name: str) -> bool:
        return name in self.estimators

    def __getitem__(self, name: str) -> NicEstimator:
        try:
            return self.estimators[name]
        except KeyError:
            raise SamplingError(
                f"no profile for {name!r}; have {sorted(self.estimators)}"
            ) from None

    def add(self, estimator: NicEstimator) -> None:
        self.estimators[estimator.name] = estimator

    @classmethod
    def sample_drivers(
        cls,
        drivers: Iterable[Driver],
        sampler: Optional[NetworkSampler] = None,
    ) -> "ProfileStore":
        """Sample every driver once (deduplicated by technology)."""
        sampler = sampler or NetworkSampler()
        store = cls()
        for driver in drivers:
            if driver.technology not in store:
                store.add(sampler.sample(driver).to_estimator())
        return store

    # -- persistence ------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        data = {name: est.as_dict() for name, est in self.estimators.items()}
        Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: "str | Path") -> "ProfileStore":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SamplingError(f"cannot load profile store {path}: {exc}") from exc
        store = cls()
        for name, d in data.items():
            est = NicEstimator.from_dict(d)
            if est.name != name:
                raise SamplingError(
                    f"profile key {name!r} holds estimator {est.name!r}"
                )
            store.add(est)
        return store
