"""The safe-mode strategy fallback ladder.

When rail confidence collapses, blindly trusting the sampled curves is
worse than not using them: a hetero split computed from a stale profile
piles bytes onto the rail that can least afford them.  The ladder
degrades the planning mode in three steps as the *minimum* rail
confidence drops:

    FULL    — trust the samples: dichotomy/waterfill hetero split
    PARTIAL — distrust the ratios, keep the rails: equal-size iso split
    SINGLE  — distrust the comparison itself: whole message on the
              single most-trusted rail

Transitions are hysteretic twice over: each boundary has distinct
enter/exit thresholds (``*_exit`` below ``*_enter``), and a minimum
dwell time must pass between any two transitions — so confidence noise
around a boundary cannot make the planner oscillate between split
shapes (which would thrash the predictor's plan cache and produce
unstable traffic patterns).
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Tuple

from repro.util.errors import ConfigurationError


class TrustLevel(IntEnum):
    """Planning modes, ordered by how much of the profile they trust."""

    SINGLE = 0
    PARTIAL = 1
    FULL = 2


class FallbackLadder:
    """Hysteretic three-level trust state machine for one sending node.

    Parameters
    ----------
    full_exit / full_enter:
        Leave FULL below ``full_exit``; return to FULL at or above
        ``full_enter`` (must be higher — hysteresis).
    partial_exit / partial_enter:
        Same pair for the PARTIAL/SINGLE boundary.
    dwell:
        Minimum simulated µs between two transitions.
    """

    def __init__(
        self,
        full_exit: float = 0.6,
        full_enter: float = 0.75,
        partial_exit: float = 0.25,
        partial_enter: float = 0.4,
        dwell: float = 200.0,
    ) -> None:
        if not 0.0 <= full_exit < full_enter <= 1.0:
            raise ConfigurationError(
                f"need 0 <= full_exit < full_enter <= 1, "
                f"got {full_exit} / {full_enter}"
            )
        if not 0.0 <= partial_exit < partial_enter <= 1.0:
            raise ConfigurationError(
                f"need 0 <= partial_exit < partial_enter <= 1, "
                f"got {partial_exit} / {partial_enter}"
            )
        if partial_enter > full_exit:
            raise ConfigurationError(
                f"partial_enter ({partial_enter}) must not exceed "
                f"full_exit ({full_exit}) — the bands would overlap"
            )
        if dwell < 0.0:
            raise ConfigurationError(f"negative dwell: {dwell}")
        self.full_exit = full_exit
        self.full_enter = full_enter
        self.partial_exit = partial_exit
        self.partial_enter = partial_enter
        self.dwell = dwell
        self.level = TrustLevel.FULL
        self._last_transition: float = float("-inf")
        #: (time, from, to, confidence) per transition, in order
        self.transitions: List[Tuple[float, TrustLevel, TrustLevel, float]] = []

    def __repr__(self) -> str:
        return (
            f"<FallbackLadder {self.level.name}, "
            f"{len(self.transitions)} transition(s)>"
        )

    def update(self, confidence: float, now: float) -> TrustLevel:
        """Fold the current minimum rail confidence; return the level.

        At most one step per call, and only after ``dwell`` µs have
        passed since the previous transition.
        """
        if now - self._last_transition < self.dwell:
            return self.level
        level = self.level
        target = level
        if level is TrustLevel.FULL:
            if confidence < self.full_exit:
                target = TrustLevel.PARTIAL
        elif level is TrustLevel.PARTIAL:
            if confidence < self.partial_exit:
                target = TrustLevel.SINGLE
            elif confidence >= self.full_enter:
                target = TrustLevel.FULL
        else:  # SINGLE
            if confidence >= self.partial_enter:
                target = TrustLevel.PARTIAL
        if target is not level:
            self.level = target
            self._last_transition = now
            self.transitions.append((now, level, target, confidence))
        return self.level
