"""The closed-loop calibration controller.

One :class:`CalibrationController` is shared cluster-wide, exactly like
the observability bundle and the invariant monitor: every engine holds a
reference (``engine.calib``) guarded by a single ``.on`` attribute read,
and :data:`NULL_CALIBRATION` is the do-nothing singleton installed when
calibration is off — in which case no code path below ever runs and the
simulation is bit-identical to a build without calibration.

When on, the loop closes like this:

1. every fully-processed data chunk reaches :meth:`observe_transfer`
   (receiver side, zero simulated cost) and its relative prediction
   error feeds the :class:`~repro.core.calibration.drift.DriftDetector`;
2. a drift trigger re-samples the suspect rail **online** via
   ``Cluster.resample(rail=...)`` — an in-sim ping-pong on a private
   testbed mirroring the rail's current (possibly silently degraded)
   speed, exponentially blended into the estimator;
3. every rendezvous split consults :meth:`plan_rdv_data`, which walks
   the :class:`~repro.core.calibration.ladder.FallbackLadder`: full
   hetero split while confidence holds, iso split under partial trust,
   single most-trusted rail when the profiles cannot be compared at
   all.  At full trust, two-rail dichotomy splits are clamped when the
   rails' error bars overlap.

Unlike obs/invariants, an *enabled* controller deliberately changes
planning — that is its job.  It stays deterministic: every decision is
a pure function of simulated state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.calibration.drift import DriftDetector
from repro.core.calibration.ladder import FallbackLadder, TrustLevel
from repro.core.packets import TransferMode
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.packets import Message
    from repro.networks.nic import Nic
    from repro.networks.transfer import Transfer


class NullCalibration:
    """Inert stand-in when calibration is off (shared singleton)."""

    __slots__ = ()
    on = False

    def __repr__(self) -> str:
        return "<NullCalibration off>"


#: the shared no-op controller — one attribute read per guarded hook
NULL_CALIBRATION = NullCalibration()


class ResampleRecord:
    """One online re-sample, for reports and experiments."""

    __slots__ = ("time", "rail", "technology", "blend", "trigger_band")

    def __init__(
        self, time: float, rail: str, technology: str, blend: float,
        trigger_band: str,
    ) -> None:
        self.time = time
        self.rail = rail
        self.technology = technology
        self.blend = blend
        self.trigger_band = trigger_band

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "rail": self.rail,
            "technology": self.technology,
            "blend": self.blend,
            "trigger_band": self.trigger_band,
        }


class CalibrationController:
    """Drift detection → online re-sampling → fallback ladder, wired.

    Parameters
    ----------
    blend:
        Exponential blending weight of each fresh profile
        (``new = (1-blend)·old + blend·fresh`` per grid point).
    auto_resample:
        When False the controller detects drift and degrades trust but
        never re-samples on its own — observation-only mode (the
        experiments use it for the "blind but aware" baseline).
    clamp_frac:
        At full trust, the largest share a two-rail dichotomy split may
        give one rail once the rails' confidence intervals overlap.
    resample_repetitions:
        Ping-pong repetitions per grid point of an online re-sample.
    detector / ladder:
        Pre-built collaborators (defaults constructed from the
        remaining keyword knobs; see their classes for semantics).
    """

    on = True

    def __init__(
        self,
        blend: float = 0.5,
        auto_resample: bool = True,
        clamp_frac: float = 0.75,
        resample_repetitions: int = 1,
        detector: Optional[DriftDetector] = None,
        ladder_knobs: Optional[Dict[str, float]] = None,
        **detector_knobs,
    ) -> None:
        if not 0.0 < blend <= 1.0:
            raise ConfigurationError(f"blend must be in (0, 1], got {blend}")
        if not 0.5 <= clamp_frac < 1.0:
            raise ConfigurationError(
                f"clamp_frac must be in [0.5, 1), got {clamp_frac}"
            )
        if resample_repetitions < 1:
            raise ConfigurationError(
                f"resample_repetitions must be >= 1, got {resample_repetitions}"
            )
        self.blend = blend
        self.auto_resample = auto_resample
        self.clamp_frac = clamp_frac
        self.resample_repetitions = resample_repetitions
        self.detector = detector or DriftDetector(**detector_knobs)
        self._ladder_knobs = dict(ladder_knobs or {})
        self._ladders: Dict[str, FallbackLadder] = {}
        self._cluster = None
        self._nics: Dict[str, "Nic"] = {}
        #: simulated instant each technology's profile was last blended;
        #: errors from chunks predicted before that instant are ignored
        self._resampled_at: Dict[str, float] = {}
        self.resample_log: List[ResampleRecord] = []
        self.drift_events: int = 0
        self.clamped_splits: int = 0
        self.observations: int = 0

    def __repr__(self) -> str:
        return (
            f"<CalibrationController {self.observations} obs, "
            f"{self.drift_events} drift, "
            f"{len(self.resample_log)} resample(s)>"
        )

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #

    def install(self, cluster) -> None:
        """Bind to a built cluster (called by ``install_calibration``)."""
        self._cluster = cluster
        self._nics = {
            nic.qualified_name: nic
            for machine in cluster.machines.values()
            for nic in machine.nics
        }

    def ladder_for(self, node: str) -> FallbackLadder:
        ladder = self._ladders.get(node)
        if ladder is None:
            ladder = self._ladders[node] = FallbackLadder(**self._ladder_knobs)
        return ladder

    # ------------------------------------------------------------------ #
    # the feedback path (receiver side, guarded by engine.calib.on)
    # ------------------------------------------------------------------ #

    def observe_transfer(self, transfer: "Transfer", nic: "Nic") -> None:
        """Fold one completed data chunk's prediction error into the
        detector; trigger an online re-sample when drift is declared.

        Runs at the instant the receive side finished processing — the
        same place the accuracy telemetry hooks — and costs zero
        simulated time; the re-sample itself runs on a *private*
        simulator, so in-flight traffic is untouched (quiesced).
        """
        if transfer.kind.is_control:
            return
        predicted = transfer.predicted_time
        if predicted is None or predicted <= 0.0 or transfer.t_complete is None:
            return
        rail = transfer.nic_name
        if not rail:
            return
        sender = self._nics.get(rail)
        if sender is None:
            return
        # Errors measured on chunks whose prediction predates the last
        # blend for this technology carry stale information — skipping
        # them keeps a fresh profile from being re-convicted instantly.
        stamped = self._resampled_at.get(sender.profile.name)
        if (
            stamped is not None
            and transfer.t_submit is not None
            and transfer.t_submit < stamped
        ):
            return
        # Measure from the wire start, not the service start: between the
        # two the chunk may queue behind earlier transfers for the tx
        # engine, and that wait is *correct* behaviour, not drift — the
        # planner accounts for it separately via busy offsets.  Folding
        # it in convicts healthy rails the moment two messages overlap.
        start = transfer.t_wire_start
        if start is None:
            start = (
                transfer.t_service_start
                if transfer.t_service_start is not None
                else transfer.t_submit
            )
        if start is None:
            return
        actual = transfer.t_complete - start
        rel_error = abs(actual - predicted) / predicted
        band = self._band(transfer.size)
        now = nic.sim.now
        self.observations += 1
        if self.detector.observe(rail, band, rel_error, now):
            self.drift_events += 1
            self._emit_instant(
                sender, "drift-detected",
                {
                    "rail": rail,
                    "band": band,
                    "ewma": self.detector.band_error(rail, band),
                },
            )
            self._count("calibration.drift_detected")
            if self.auto_resample and self._cluster is not None:
                self._resample(rail, band)

    @staticmethod
    def _band(size: int) -> str:
        from repro.obs.accuracy import size_bucket

        return size_bucket(size)

    # ------------------------------------------------------------------ #
    # online re-sampling
    # ------------------------------------------------------------------ #

    def _resample(self, rail: str, trigger_band: str) -> None:
        cluster = self._cluster
        nic = self._nics[rail]
        now = nic.sim.now
        cluster.resample(
            rail=rail,
            blend=self.blend,
            repetitions=self.resample_repetitions,
        )
        tech = nic.profile.name
        self._resampled_at[tech] = now
        # The whole technology shares one estimator: forget the evidence
        # of every rail it backs, on every node.
        for qname, other in self._nics.items():
            if other.profile.name == tech:
                self.detector.reset_rail(qname)
        self.resample_log.append(
            ResampleRecord(now, rail, tech, self.blend, trigger_band)
        )
        self._count("calibration.resamples")
        self._emit_instant(
            nic, "resample",
            {"rail": rail, "technology": tech, "blend": self.blend},
        )

    # ------------------------------------------------------------------ #
    # the planning path (strategy side)
    # ------------------------------------------------------------------ #

    def plan_rdv_data(self, strategy, msg: "Message", rails: List["Nic"]):
        """Ladder-aware rendezvous split (HeteroSplitStrategy delegates
        here while calibration is on)."""
        from repro.core.prediction import RailPlan
        from repro.core.split import SplitResult, equal_split

        engine = strategy.engine
        now = engine.sim.now
        confs = {
            n.qualified_name: self.detector.confidence(n.qualified_name)
            for n in rails
        }
        ladder = self.ladder_for(engine.machine.name)
        before = ladder.level
        level = ladder.update(min(confs.values()), now)
        if level is not before:
            self._count("calibration.fallback_transitions")
            self._emit_instant(
                rails[0], "fallback",
                {
                    "node": engine.machine.name,
                    "from": before.name,
                    "to": level.name,
                    "confidence": min(confs.values()),
                },
            )
            if level < before:
                # A ladder *drop* (lost trust) is a post-mortem moment:
                # dump the flight-recorder ring leading up to it.
                obs = self._cluster.obs
                if obs.on:
                    obs.flight.trigger(
                        "ladder-drop",
                        now,
                        detail={
                            "node": engine.machine.name,
                            "from": before.name,
                            "to": level.name,
                            "confidence": min(confs.values()),
                        },
                    )
        if level is TrustLevel.FULL:
            plan = strategy.hetero_plan(msg, rails)
            plan = self._maybe_clamp(strategy, msg, plan)
        elif level is TrustLevel.PARTIAL:
            sizes = equal_split(msg.size, len(rails))
            used = [(n, s) for n, s in zip(rails, sizes) if s > 0]
            plan = RailPlan(
                nics=[n for n, _ in used],
                sizes=[s for _, s in used],
                predicted_completion=0.0,
                split=SplitResult(
                    sizes=[s for _, s in used],
                    predicted_times=[0.0] * len(used),
                    iterations=0,
                ),
            )
        else:  # SINGLE: whole message on the most-trusted rail
            best = min(
                rails,
                key=lambda n: (-confs[n.qualified_name], n.qualified_name),
            )
            predicted = engine.predictor.predict(
                best, msg.size, TransferMode.RENDEZVOUS
            )
            plan = RailPlan(
                nics=[best],
                sizes=[msg.size],
                predicted_completion=predicted,
                split=SplitResult(
                    sizes=[msg.size],
                    predicted_times=[predicted],
                    iterations=0,
                ),
            )
        plan.confidence = confs
        plan.trust = level.name.lower()
        return plan

    def _maybe_clamp(self, strategy, msg: "Message", plan):
        """Bound a two-rail dichotomy when the error bars overlap.

        Each rail's predicted whole-message time ``t_i`` carries an
        uncertainty of ``±e_i·t_i`` (its band's error EWMA).  When the
        intervals ``[t_i(1−e_i), t_i(1+e_i)]`` intersect, the solver's
        preference between the rails is within noise — so no rail may
        receive more than ``clamp_frac`` of the bytes.  With zero
        observed error the intervals are points and healthy planning is
        untouched.
        """
        if len(plan.nics) != 2:
            return plan
        band = self._band(msg.size)
        predictor = strategy.engine.predictor
        t = [
            predictor.planning_transfer_time(n, msg.size, TransferMode.RENDEZVOUS)
            for n in plan.nics
        ]
        e = [self.detector.band_error(n.qualified_name, band) for n in plan.nics]
        if e[0] == 0.0 and e[1] == 0.0:
            return plan
        if abs(t[0] - t[1]) > e[0] * t[0] + e[1] * t[1]:
            return plan
        total = plan.total
        cap = int(self.clamp_frac * total)
        hi = 0 if plan.sizes[0] >= plan.sizes[1] else 1
        if plan.sizes[hi] <= cap:
            return plan
        sizes = list(plan.sizes)
        sizes[hi] = cap
        sizes[1 - hi] = total - cap
        plan.sizes = sizes
        plan.split.sizes = list(sizes)
        self.clamped_splits += 1
        self._count("calibration.clamped_splits")
        return plan

    # ------------------------------------------------------------------ #
    # confidence / reporting
    # ------------------------------------------------------------------ #

    def confidence(self, rail: str) -> float:
        return self.detector.confidence(rail)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state dump for reports and the CLI."""
        return {
            "observations": self.observations,
            "drift_events": self.drift_events,
            "clamped_splits": self.clamped_splits,
            "resamples": [r.as_dict() for r in self.resample_log],
            "confidence": {
                rail: self.detector.confidence(rail)
                for rail in self.detector.rails()
            },
            "bands": self.detector.snapshot(),
            "ladders": {
                node: {
                    "level": ladder.level.name,
                    "transitions": [
                        {
                            "time": t,
                            "from": frm.name,
                            "to": to.name,
                            "confidence": conf,
                        }
                        for t, frm, to, conf in ladder.transitions
                    ],
                }
                for node, ladder in sorted(self._ladders.items())
            },
        }

    def report(self) -> str:
        """Human-readable calibration summary."""
        lines = [
            f"calibration: {self.observations} observation(s), "
            f"{self.drift_events} drift event(s), "
            f"{len(self.resample_log)} resample(s), "
            f"{self.clamped_splits} clamped split(s)"
        ]
        for rail in self.detector.rails():
            lines.append(
                f"  {rail}: confidence {self.detector.confidence(rail):.3f}"
            )
        for rec in self.resample_log:
            lines.append(
                f"  resample @{rec.time:.1f}us: {rec.rail} "
                f"({rec.technology}, blend {rec.blend}, "
                f"band {rec.trigger_band})"
            )
        for node, ladder in sorted(self._ladders.items()):
            for t, frm, to, conf in ladder.transitions:
                lines.append(
                    f"  fallback @{t:.1f}us: {node} {frm.name} -> {to.name} "
                    f"(confidence {conf:.3f})"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # obs plumbing (guarded — silent when observability is off)
    # ------------------------------------------------------------------ #

    def _count(self, name: str) -> None:
        cluster = self._cluster
        if cluster is None:
            return
        obs = cluster.obs
        if obs.on:
            obs.metrics.counter(name).inc()

    def _emit_instant(self, nic: "Nic", name: str, args: Dict) -> None:
        cluster = self._cluster
        if cluster is None:
            return
        obs = cluster.obs
        if obs.on and obs.tracer.enabled:
            obs.tracer.instant(
                nic.machine.name, "calibration", name, nic.sim.now,
                cat="calibration", args=args,
            )


def install_calibration(cluster, controller: CalibrationController) -> None:
    """Wire a controller into a built cluster (mirror of install_faults)."""
    controller.install(cluster)
    cluster.calibration = controller
    for engine in cluster.engines.values():
        engine.calib = controller
