"""Estimator drift defense: the closed-loop calibration subsystem.

The paper's optimization chain (sampling → estimation → idle prediction
→ hetero split) trusts its launch-time profiles forever.  This package
closes the loop (DESIGN A8/A9): a :class:`DriftDetector` watches the
per-chunk prediction-error stream, a :class:`CalibrationController`
re-samples drifting rails *online* (blending fresh curves into the
immutable estimators) and degrades planning along the
:class:`FallbackLadder` while confidence is low.

Off by default: engines hold :data:`NULL_CALIBRATION` and every hook
site costs one attribute read — with calibration off, simulated
timestamps and exported artefacts are byte-identical to a build without
this package.  See ``docs/calibration.md``.
"""

from repro.core.calibration.controller import (
    NULL_CALIBRATION,
    CalibrationController,
    NullCalibration,
    ResampleRecord,
    install_calibration,
)
from repro.core.calibration.drift import BandState, DriftDetector
from repro.core.calibration.ladder import FallbackLadder, TrustLevel

__all__ = [
    "BandState",
    "CalibrationController",
    "DriftDetector",
    "FallbackLadder",
    "NULL_CALIBRATION",
    "NullCalibration",
    "ResampleRecord",
    "TrustLevel",
    "install_calibration",
]
