"""Drift detection over the prediction-error stream.

The estimator curves are sampled once at launch (§III-C) and then
trusted forever; a silently degraded rail turns every later prediction
into a systematic lie.  The :class:`DriftDetector` watches the same
per-chunk ``(predicted, actual)`` pairs the accuracy telemetry records
and maintains, per ``(rail, size band)``, an EWMA of the *relative*
error:

    ewma ← (1 − α)·ewma + α·|actual − predicted| / predicted

Three mechanisms keep it from flapping:

* **threshold hysteresis** — a band enters the *drifting* state when its
  EWMA crosses ``drift_threshold`` and only leaves it again below the
  strictly lower ``clear_threshold``;
* **minimum evidence** — no trigger before ``min_samples`` observations
  landed in the band (one noisy chunk is not drift);
* **cooldown** — after a trigger on some rail, further triggers for the
  same rail are suppressed for ``cooldown`` simulated µs, giving the
  re-sampled profile time to take effect before being judged.

Each rail also gets a **confidence score** in ``[0, 1]``: the worst
band's EWMA mapped through ``max(0, 1 − ewma / confidence_scale)``.
Fresh rails (no evidence) score 1.0 — trust until proven wrong, exactly
like the paper's engine does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.util.errors import ConfigurationError


class BandState:
    """Streaming error state of one ``(rail, size band)`` cell."""

    __slots__ = ("ewma", "samples", "drifting", "last_error", "last_update")

    def __init__(self) -> None:
        self.ewma: float = 0.0
        self.samples: int = 0
        self.drifting: bool = False
        self.last_error: float = 0.0
        self.last_update: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "ewma": self.ewma,
            "samples": self.samples,
            "drifting": self.drifting,
            "last_error": self.last_error,
            "last_update": self.last_update,
        }


class DriftDetector:
    """Per-(rail, size-band) EWMA drift detection with hysteresis.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation.
    drift_threshold / clear_threshold:
        Enter/exit bounds of the *drifting* state (enter must be
        strictly above exit — that gap is the hysteresis).
    min_samples:
        Observations required in a band before it may trigger.
    cooldown:
        Simulated µs after a trigger during which the same rail cannot
        trigger again.
    confidence_scale:
        EWMA value at which a rail's confidence reaches 0.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        drift_threshold: float = 0.15,
        clear_threshold: float = 0.05,
        min_samples: int = 3,
        cooldown: float = 300.0,
        confidence_scale: float = 0.5,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if drift_threshold <= clear_threshold:
            raise ConfigurationError(
                f"drift_threshold ({drift_threshold}) must exceed "
                f"clear_threshold ({clear_threshold}) — that gap is the "
                f"hysteresis"
            )
        if clear_threshold < 0.0:
            raise ConfigurationError(f"negative clear_threshold: {clear_threshold}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1, got {min_samples}")
        if cooldown < 0.0:
            raise ConfigurationError(f"negative cooldown: {cooldown}")
        if confidence_scale <= 0.0:
            raise ConfigurationError(
                f"confidence_scale must be positive, got {confidence_scale}"
            )
        self.alpha = alpha
        self.drift_threshold = drift_threshold
        self.clear_threshold = clear_threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.confidence_scale = confidence_scale
        self._bands: Dict[Tuple[str, str], BandState] = {}
        self._last_trigger: Dict[str, float] = {}
        #: (time, rail, band, ewma) per trigger, in firing order
        self.trigger_log: List[Tuple[float, str, str, float]] = []

    def __repr__(self) -> str:
        drifting = sum(1 for b in self._bands.values() if b.drifting)
        return (
            f"<DriftDetector {len(self._bands)} band(s), "
            f"{drifting} drifting, {len(self.trigger_log)} trigger(s)>"
        )

    # ------------------------------------------------------------------ #
    # observation
    # ------------------------------------------------------------------ #

    def observe(
        self, rail: str, band: str, rel_error: float, now: float
    ) -> bool:
        """Fold one relative error into ``(rail, band)``.

        Returns True exactly when this observation *newly* pushes the
        band into the drifting state (EWMA crossed ``drift_threshold``
        with enough evidence) and the rail is out of cooldown — i.e. the
        caller should re-sample the rail now.
        """
        if rel_error < 0.0:
            raise ConfigurationError(f"negative relative error: {rel_error}")
        state = self._bands.get((rail, band))
        if state is None:
            state = self._bands[(rail, band)] = BandState()
        if state.samples == 0:
            state.ewma = rel_error
        else:
            state.ewma += self.alpha * (rel_error - state.ewma)
        state.samples += 1
        state.last_error = rel_error
        state.last_update = now
        if state.drifting:
            # Hysteresis: only a drop below the *lower* bound clears.
            if state.ewma < self.clear_threshold:
                state.drifting = False
            return False
        if state.ewma <= self.drift_threshold:
            return False
        if state.samples < self.min_samples:
            return False
        state.drifting = True
        last = self._last_trigger.get(rail)
        if last is not None and now - last < self.cooldown:
            return False
        self._last_trigger[rail] = now
        self.trigger_log.append((now, rail, band, state.ewma))
        return True

    # ------------------------------------------------------------------ #
    # confidence
    # ------------------------------------------------------------------ #

    def band_error(self, rail: str, band: str) -> float:
        """Current EWMA of one band (0.0 when never observed)."""
        state = self._bands.get((rail, band))
        return state.ewma if state is not None else 0.0

    def confidence(self, rail: str) -> float:
        """Worst-band confidence of a rail in ``[0, 1]`` (1.0 = fresh)."""
        worst = 0.0
        seen = False
        for (r, _), state in self._bands.items():
            if r == rail and state.samples > 0:
                seen = True
                if state.ewma > worst:
                    worst = state.ewma
        if not seen:
            return 1.0
        conf = 1.0 - worst / self.confidence_scale
        return conf if conf > 0.0 else 0.0

    def rails(self) -> List[str]:
        return sorted({rail for rail, _ in self._bands})

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def reset_rail(self, rail: str) -> None:
        """Forget a rail's evidence (after its profile was re-sampled).

        The cooldown stamp survives on purpose: errors from chunks
        predicted with the *old* profile may still stream in, and the
        rail must not re-trigger on them immediately.
        """
        for key in [k for k in self._bands if k[0] == rail]:
            del self._bands[key]

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Nested ``{rail: {band: state}}`` view for reports/JSON."""
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (rail, band), state in sorted(self._bands.items()):
            out.setdefault(rail, {})[band] = state.as_dict()
        return out
