"""repro — a multicore-enabled multirail communication engine, reproduced.

A complete Python reproduction of Brunet, Trahay & Denis, *A
multicore-enabled multirail communication engine* (IEEE CLUSTER 2008),
running the NewMadeleine/PIOMan/Marcel stack over a deterministic
discrete-event simulator instead of the paper's Myri-10G + Quadrics
testbed.

Ninety-second tour::

    from repro.api import ClusterBuilder
    from repro.util.units import MiB

    cluster = ClusterBuilder.paper_testbed(strategy="hetero_split").build()
    node0, node1 = cluster.session("node0"), cluster.session("node1")
    node1.irecv(source="node0")
    msg = node0.isend("node1", 4 * MiB)
    cluster.run()
    print(msg.latency, msg.rails_used, msg.chunk_sizes)

Package map: :mod:`repro.simtime` (event kernel), :mod:`repro.hardware`
(cores/nodes), :mod:`repro.networks` (rails), :mod:`repro.threading` +
:mod:`repro.pioman` (Marcel/PIOMan runtime), :mod:`repro.core`
(NewMadeleine: sampling, prediction, splitting, strategies, engine),
:mod:`repro.api` (clusters, sessions, MPI layer), :mod:`repro.trace`
(timelines), :mod:`repro.bench` (experiments; also
``python -m repro.bench.cli``).  See DESIGN.md and EXPERIMENTS.md at the
repository root.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
