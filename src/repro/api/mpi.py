"""MPI-flavoured layer over the multirail engine (the paper's future work).

The paper's conclusion plans to "integrate NewMadeleine in the
MPICH2-Nemesis software stack so as to use the multirail capabilities ...
within the widespread MPI implementation".  This module provides that
integration's *shape*: a rank-addressed :class:`Communicator` whose
point-to-point calls ride the engine (and therefore the strategies), plus
timing-faithful collectives (barrier, bcast, gather, alltoall).

The API follows mpi4py's lower-case convention.  Because this is a
timing simulator, messages carry *sizes*, not payloads; a collective's
result is when it completes.  Blocking calls are generator coroutines to
``yield from`` inside simulation processes::

    world = MpiWorld.create(4, strategy="hetero_split")

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, "1M")
        elif comm.rank == 1:
            yield from comm.recv(0)
        yield from comm.barrier()

    world.spawn_all(program)
    world.run()
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence

from repro.api.cluster import Cluster, ClusterBuilder, RunResult, StrategySpec
from repro.api.session import Session
from repro.core.packets import Message, RecvHandle
from repro.util.errors import ConfigurationError
from repro.util.units import parse_size

#: tag space reserved for collectives (user tags must stay below)
_COLLECTIVE_TAG_BASE = 1 << 20


def _rank_name(rank: int) -> str:
    return f"rank{rank}"


class Communicator:
    """One rank's handle on the world (MPI_COMM_WORLD equivalent)."""

    def __init__(self, world: "MpiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.session: Session = world.cluster.session(_rank_name(rank))
        self._collective_seq = 0

    def __repr__(self) -> str:
        return f"<Communicator rank {self.rank}/{self.size}>"

    @property
    def size(self) -> int:
        return self.world.size

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ConfigurationError(
                f"rank {peer} outside 0..{self.size - 1}"
            )
        if peer == self.rank:
            raise ConfigurationError("self-sends are not modelled")

    # ------------------------------------------------------------------ #
    # point to point
    # ------------------------------------------------------------------ #

    def isend(self, dest: int, size: "int | str", tag: int = 0) -> Message:
        """Non-blocking send; completion via the message's ``done`` event."""
        self._check_peer(dest)
        if tag >= _COLLECTIVE_TAG_BASE or tag < 0:
            raise ConfigurationError(f"user tag {tag} outside [0, {_COLLECTIVE_TAG_BASE})")
        return self.session.isend(_rank_name(dest), size, tag=tag)

    def irecv(self, source: Optional[int] = None, tag: Optional[int] = None) -> RecvHandle:
        """Non-blocking receive (None = wildcard, as in MPI_ANY_SOURCE)."""
        if source is not None:
            self._check_peer(source)
        return self.session.irecv(
            source=_rank_name(source) if source is not None else None, tag=tag
        )

    def send(self, dest: int, size: "int | str", tag: int = 0) -> Iterator:
        """Blocking send: returns when the receiver has the message."""
        msg = self.isend(dest, size, tag=tag)
        result = yield from self.session.wait(msg)
        return result

    def recv(self, source: Optional[int] = None, tag: Optional[int] = None) -> Iterator:
        """Blocking receive: returns the matched message."""
        handle = self.irecv(source=source, tag=tag)
        result = yield from self.session.wait(handle)
        return result

    def sendrecv(
        self, dest: int, size: "int | str", source: Optional[int] = None, tag: int = 0
    ) -> Iterator:
        """Concurrent send + receive (the ping-pong building block)."""
        handle = self.irecv(source=source, tag=tag)
        self.isend(dest, size, tag=tag)
        result = yield from self.session.wait(handle)
        return result

    # ------------------------------------------------------------------ #
    # collectives (timing-faithful classic algorithms)
    # ------------------------------------------------------------------ #

    #: tag slots reserved per collective call (bounds the round count)
    _TAGS_PER_COLLECTIVE = 64

    def _next_collective_tag(self) -> int:
        # Every rank calls collectives in the same order (MPI semantics),
        # so a per-rank counter yields matching tag blocks across ranks.
        tag = (
            _COLLECTIVE_TAG_BASE
            + self._collective_seq * self._TAGS_PER_COLLECTIVE
        )
        self._collective_seq += 1
        return tag

    def barrier(self) -> Iterator:
        """Dissemination barrier: ceil(log2(n)) rounds of 1-byte tokens.

        In round ``k`` every rank sends to ``rank + 2^k`` and waits for a
        token from ``rank - 2^k`` (mod n); after the last round all ranks
        are transitively synchronized.
        """
        n = self.size
        if n == 1:
            return
        base_tag = self._next_collective_tag()
        round_no = 0
        dist = 1
        while dist < n:
            peer_to = (self.rank + dist) % n
            peer_from = (self.rank - dist) % n
            self.session.isend(_rank_name(peer_to), 1, tag=base_tag + round_no)
            handle = self.session.irecv(
                source=_rank_name(peer_from), tag=base_tag + round_no
            )
            yield from self.session.wait(handle)
            dist *= 2
            round_no += 1

    def bcast(self, size: "int | str", root: int = 0) -> Iterator:
        """Binomial-tree broadcast of ``size`` bytes from ``root``.

        The classic MPICH algorithm on virtual ranks (root mapped to 0):
        receive from the parent (clear the lowest set bit), then forward
        to children at decreasing strides.
        """
        n = self.size
        self._check_root(root)
        nbytes = parse_size(size)
        if n == 1:
            return
        tag = self._next_collective_tag()
        vrank = (self.rank - root) % n
        mask = 1
        while mask < n:
            if vrank & mask:
                parent = ((vrank ^ mask) + root) % n
                handle = self.session.irecv(source=_rank_name(parent), tag=tag)
                yield from self.session.wait(handle)
                break
            mask <<= 1
        # The loop leaves ``mask`` at the stride above this rank's highest
        # forwarding distance (root: past the top); descend and forward.
        mask >>= 1
        while mask > 0:
            if vrank + mask < n:
                child = ((vrank + mask) + root) % n
                self.session.isend(_rank_name(child), nbytes, tag=tag)
            mask >>= 1

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ConfigurationError(f"root {root} outside 0..{self.size - 1}")

    def gather(self, size: "int | str", root: int = 0) -> Iterator:
        """Linear gather: every rank sends ``size`` bytes to ``root``."""
        self._check_root(root)
        nbytes = parse_size(size)
        tag = self._next_collective_tag()
        if self.rank == root:
            handles = [
                self.session.irecv(source=_rank_name(r), tag=tag)
                for r in range(self.size)
                if r != root
            ]
            for h in handles:
                yield from self.session.wait(h)
        else:
            msg = self.session.isend(_rank_name(root), nbytes, tag=tag)
            yield from self.session.wait(msg)

    def alltoall(self, size: "int | str") -> Iterator:
        """Each rank sends ``size`` bytes to every other rank."""
        nbytes = parse_size(size)
        tag = self._next_collective_tag()
        handles = [
            self.session.irecv(source=_rank_name(r), tag=tag)
            for r in range(self.size)
            if r != self.rank
        ]
        for r in range(self.size):
            if r != self.rank:
                self.session.isend(_rank_name(r), nbytes, tag=tag)
        for h in handles:
            yield from self.session.wait(h)

    def scatter(self, size: "int | str", root: int = 0) -> Iterator:
        """Root sends a distinct ``size``-byte block to every other rank.

        Linear (the root owns all the data, so the tree variants only
        move *more* bytes; linear matches MPICH's default for scatter of
        large blocks).
        """
        self._check_root(root)
        nbytes = parse_size(size)
        tag = self._next_collective_tag()
        if self.rank == root:
            last: Optional[Message] = None
            for r in range(self.size):
                if r != root:
                    last = self.session.isend(_rank_name(r), nbytes, tag=tag)
            if last is not None:
                yield from self.session.wait(last)
        else:
            handle = self.session.irecv(source=_rank_name(root), tag=tag)
            yield from self.session.wait(handle)

    def allgather(self, size: "int | str") -> Iterator:
        """Every rank ends up with every rank's ``size``-byte block.

        Bruck/dissemination style: ceil(log2(n)) rounds; in round ``k``
        rank ``r`` sends its accumulated blocks (``2^k`` of them) to
        ``r - 2^k`` and receives as many from ``r + 2^k``.
        """
        n = self.size
        nbytes = parse_size(size)
        if n == 1:
            return
        base_tag = self._next_collective_tag()
        round_no = 0
        dist = 1
        accumulated = 1
        while dist < n:
            peer_to = (self.rank - dist) % n
            peer_from = (self.rank + dist) % n
            block = min(accumulated, n - accumulated) * nbytes
            self.session.isend(
                _rank_name(peer_to), max(1, block), tag=base_tag + round_no
            )
            handle = self.session.irecv(
                source=_rank_name(peer_from), tag=base_tag + round_no
            )
            yield from self.session.wait(handle)
            accumulated = min(n, accumulated * 2)
            dist *= 2
            round_no += 1

    def reduce(self, size: "int | str", root: int = 0) -> Iterator:
        """Binomial-tree reduction of ``size``-byte contributions to root.

        The mirror image of :meth:`bcast`: leaves send first, inner nodes
        combine (combination cost is the receive itself here — payloads
        are sizes, not values) and forward up.
        """
        n = self.size
        self._check_root(root)
        nbytes = parse_size(size)
        if n == 1:
            return
        tag = self._next_collective_tag()
        vrank = (self.rank - root) % n
        # Receive from children: strides below our lowest set bit.
        mask = 1
        while mask < n:
            if vrank & mask:
                break
            child_v = vrank + mask
            if child_v < n:
                child = (child_v + root) % n
                handle = self.session.irecv(source=_rank_name(child), tag=tag)
                yield from self.session.wait(handle)
            mask <<= 1
        # Then send our combined contribution to the parent (root: none).
        if vrank != 0:
            parent = ((vrank ^ mask) + root) % n
            msg = self.session.isend(_rank_name(parent), nbytes, tag=tag)
            yield from self.session.wait(msg)


class MpiWorld:
    """A fully-connected set of ranks over multirail point-to-point links."""

    def __init__(self, cluster: Cluster, size: int) -> None:
        self.cluster = cluster
        self.size = size
        self.comms: List[Communicator] = [Communicator(self, r) for r in range(size)]

    def __repr__(self) -> str:
        return f"<MpiWorld size={self.size}>"

    @classmethod
    def create(
        cls,
        n_ranks: int,
        strategy: StrategySpec = "hetero_split",
        rails: Sequence[str] = ("myri10g", "quadrics"),
        profiles=None,
    ) -> "MpiWorld":
        """Build a full mesh: every rank pair joined by one rail per
        technology (point-to-point wires, as on the paper's testbed)."""
        if n_ranks < 2:
            raise ConfigurationError(f"an MPI world needs >= 2 ranks, got {n_ranks}")
        builder = ClusterBuilder(strategy=strategy)
        for r in range(n_ranks):
            builder.add_node(_rank_name(r))
        for a in range(n_ranks):
            for b in range(a + 1, n_ranks):
                for rail in rails:
                    builder.add_rail(rail, _rank_name(a), _rank_name(b))
        if profiles is not None:
            builder.sampling(profiles=profiles)
        return cls(builder.build(), n_ranks)

    def comm(self, rank: int) -> Communicator:
        try:
            return self.comms[rank]
        except IndexError:
            raise ConfigurationError(f"no rank {rank}; world size {self.size}") from None

    def spawn_all(self, program: Callable[[Communicator], Iterator]) -> List:
        """Start ``program(comm)`` as one simulation process per rank."""
        return [
            self.cluster.sim.spawn(program(comm), name=f"rank{comm.rank}")
            for comm in self.comms
        ]

    def run(self, until: Optional[float] = None) -> "RunResult":
        return self.cluster.run(until=until)
