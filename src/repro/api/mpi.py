"""MPI-flavoured layer over the multirail engine (the paper's future work).

The paper's conclusion plans to "integrate NewMadeleine in the
MPICH2-Nemesis software stack so as to use the multirail capabilities ...
within the widespread MPI implementation".  This module provides that
integration's *shape*: a rank-addressed :class:`Communicator` whose
point-to-point calls ride the engine (and therefore the strategies), plus
timing-faithful collectives (barrier, bcast, gather, alltoall).

The API follows mpi4py's lower-case convention.  Because this is a
timing simulator, messages carry *sizes*, not payloads; a collective's
result is when it completes.  Blocking calls are generator coroutines to
``yield from`` inside simulation processes::

    world = MpiWorld.create(4, strategy="hetero_split")

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, "1M")
        elif comm.rank == 1:
            yield from comm.recv(0)
        yield from comm.barrier()

    world.spawn_all(program)
    world.run()

Collectives default to the original naive compositions (selectable
explicitly as ``algorithm="naive"`` — that path is bit-identical to
older revisions).  The classic schedules live in
:mod:`repro.api.collectives` and are chosen per call
(``comm.bcast("4M", algorithm="ring")``), per world
(``MpiWorld.create(8, collectives={"alltoall": "ring"})``), or by the
cost model (``algorithm="auto"``).  Worlds can also span switched
fabrics: ``MpiWorld.create(fabric=Fabric.fat_tree(16))``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.api import collectives as coll
from repro.api.cluster import Cluster, ClusterBuilder, RunResult, StrategySpec
from repro.api.collectives import AlgorithmSelector
from repro.api.session import Session
from repro.core.packets import Message, RecvHandle
from repro.hardware.topology import Fabric
from repro.util.errors import ConfigurationError
from repro.util.units import parse_size

#: tag space reserved for collectives (user tags must stay below)
_COLLECTIVE_TAG_BASE = 1 << 20


def _rank_name(rank: int) -> str:
    return f"rank{rank}"


def _safe_size(size) -> int:
    """``parse_size`` that never raises — profiling metadata only (the
    schedule body re-parses the size and raises the proper error)."""
    try:
        return parse_size(size)
    except (ValueError, TypeError):
        return 0


class Communicator:
    """One rank's handle on the world (MPI_COMM_WORLD equivalent)."""

    def __init__(self, world: "MpiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.session: Session = world.cluster.session(world.node_name(rank))
        self._collective_seq = 0
        #: resolved algorithm of the collective currently executing
        #: (read by the obs profiler after the schedule finishes)
        self._last_algorithm = "naive"
        #: per-rank profiled-op counter (ranks call collectives in the
        #: same order, so equal seq values line up across ranks)
        self._profile_seq = 0

    def peer_name(self, rank: int) -> str:
        """Node name of a rank (``rank3`` in default worlds; the fabric's
        node names when the world was built from one)."""
        return self.world.node_name(rank)

    def __repr__(self) -> str:
        return f"<Communicator rank {self.rank}/{self.size}>"

    @property
    def size(self) -> int:
        return self.world.size

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ConfigurationError(
                f"rank {peer} outside 0..{self.size - 1}"
            )
        if peer == self.rank:
            raise ConfigurationError("self-sends are not modelled")

    # ------------------------------------------------------------------ #
    # point to point
    # ------------------------------------------------------------------ #

    def isend(self, dest: int, size: "int | str", tag: int = 0) -> Message:
        """Non-blocking send; completion via the message's ``done`` event."""
        self._check_peer(dest)
        if tag >= _COLLECTIVE_TAG_BASE or tag < 0:
            raise ConfigurationError(f"user tag {tag} outside [0, {_COLLECTIVE_TAG_BASE})")
        return self.session.isend(self.peer_name(dest), size, tag=tag)

    def irecv(self, source: Optional[int] = None, tag: Optional[int] = None) -> RecvHandle:
        """Non-blocking receive (None = wildcard, as in MPI_ANY_SOURCE)."""
        if source is not None:
            self._check_peer(source)
        return self.session.irecv(
            source=self.peer_name(source) if source is not None else None, tag=tag
        )

    def send(self, dest: int, size: "int | str", tag: int = 0) -> Iterator:
        """Blocking send: returns when the receiver has the message."""
        msg = self.isend(dest, size, tag=tag)
        result = yield from self.session.wait(msg)
        return result

    def recv(self, source: Optional[int] = None, tag: Optional[int] = None) -> Iterator:
        """Blocking receive: returns the matched message."""
        handle = self.irecv(source=source, tag=tag)
        result = yield from self.session.wait(handle)
        return result

    def sendrecv(
        self, dest: int, size: "int | str", source: Optional[int] = None, tag: int = 0
    ) -> Iterator:
        """Concurrent send + receive (the ping-pong building block)."""
        handle = self.irecv(source=source, tag=tag)
        self.isend(dest, size, tag=tag)
        result = yield from self.session.wait(handle)
        return result

    # ------------------------------------------------------------------ #
    # collectives (timing-faithful classic algorithms)
    # ------------------------------------------------------------------ #

    #: tag slots reserved per collective call (bounds the round count)
    _TAGS_PER_COLLECTIVE = 64

    def _next_collective_tag(self, span: int = _TAGS_PER_COLLECTIVE) -> int:
        # Every rank calls collectives in the same order (MPI semantics),
        # so a per-rank counter yields matching tag blocks across ranks.
        # Algorithms needing more than one 64-slot block (e.g. a ring
        # all-to-all across 128 ranks) reserve several; the naive paths
        # keep the default span, so their tag values never move.
        tag = (
            _COLLECTIVE_TAG_BASE
            + self._collective_seq * self._TAGS_PER_COLLECTIVE
        )
        blocks = -(-max(1, span) // self._TAGS_PER_COLLECTIVE)
        self._collective_seq += blocks
        return tag

    def _resolve_algorithm(
        self, collective: str, algorithm: Optional[str], nbytes: int
    ) -> str:
        """Per-call override > world default > ``"naive"``; ``"auto"``
        goes through the world's cost-model selector."""
        if algorithm is None:
            algorithm = self.world.collectives.get(collective, "naive")
        coll.validate_algorithm(collective, algorithm)
        if algorithm == "auto":
            algorithm = self.world.selector().select(
                collective,
                max(1, nbytes),
                self.size,
                health=self.world.fabric_health(),
            )
        self._last_algorithm = algorithm
        return algorithm

    # -- obs: collective critical-path profiler (docs/observability.md) --

    def _profiling(self) -> bool:
        """One ``obs.on`` read when off — the obs overhead contract."""
        obs = self.world.cluster.obs
        return obs.on and obs.collectives.enabled

    def _profile(self, name: str, nbytes: int, body: Iterator) -> Iterator:
        """Run a collective generator inside a profiling scope.

        Purely passive: marks this rank's send log before the schedule
        runs and hands the profiler the slice of messages it posted
        afterwards — no extra event, no timestamp moved.  Completion
        times are read lazily once the run drains.
        """
        cluster = self.world.cluster
        engine = self.session.engine
        mark = len(engine.sent_log)
        t0 = cluster.sim.now
        self._last_algorithm = "naive"
        yield from body
        cluster.obs.collectives.finish_op(
            rank=self.rank,
            node=self.session.node,
            collective=name,
            algorithm=self._last_algorithm,
            nbytes=nbytes,
            seq=self._profile_seq,
            t_start=t0,
            t_end=cluster.sim.now,
            msgs=list(engine.sent_log[mark:]),
            hop_predict=self._hop_predict(),
        )
        self._profile_seq += 1

    def _hop_predict(self):
        """The cost model's memoized per-hop lookup, or None unsampled."""
        profiles = self.world.cluster.profiles
        if profiles is None or not profiles.estimators:
            return None
        return self.world.selector().hop

    def barrier(self) -> Iterator:
        """Dissemination barrier: ceil(log2(n)) rounds of 1-byte tokens.

        In round ``k`` every rank sends to ``rank + 2^k`` and waits for a
        token from ``rank - 2^k`` (mod n); after the last round all ranks
        are transitively synchronized.
        """
        body = self._barrier_impl()
        if self._profiling():
            yield from self._profile("barrier", 0, body)
        else:
            yield from body

    def _barrier_impl(self) -> Iterator:
        n = self.size
        self._last_algorithm = "dissemination"
        if n == 1:
            return
        base_tag = self._next_collective_tag()
        round_no = 0
        dist = 1
        while dist < n:
            peer_to = (self.rank + dist) % n
            peer_from = (self.rank - dist) % n
            self.session.isend(self.peer_name(peer_to), 1, tag=base_tag + round_no)
            handle = self.session.irecv(
                source=self.peer_name(peer_from), tag=base_tag + round_no
            )
            yield from self.session.wait(handle)
            dist *= 2
            round_no += 1

    def bcast(
        self, size: "int | str", root: int = 0,
        algorithm: Optional[str] = None,
    ) -> Iterator:
        """Broadcast of ``size`` bytes from ``root``.

        ``algorithm``: ``naive`` (the classic whole-message binomial
        tree, the default), ``binomial`` (segmented/pipelined tree),
        ``ring`` (segmented ring pipeline), ``doubling`` (scatter +
        allgather), or ``auto``.
        """
        body = self._bcast_impl(size, root, algorithm)
        if self._profiling():
            yield from self._profile("bcast", _safe_size(size), body)
        else:
            yield from body

    def _bcast_impl(
        self, size: "int | str", root: int, algorithm: Optional[str]
    ) -> Iterator:
        n = self.size
        self._check_root(root)
        nbytes = parse_size(size)
        if n == 1:
            return
        algo = self._resolve_algorithm("bcast", algorithm, nbytes)
        if algo != "naive":
            if algo == "doubling":
                span = 2 + max(1, math.ceil(math.log2(n)))
                tag = self._next_collective_tag(span=span)
                yield from coll.bcast_doubling(self, nbytes, root, tag)
                return
            segs = coll.pipeline_segments(nbytes, self.world.rail_estimators())
            tag = self._next_collective_tag(span=len(segs))
            impl = coll.bcast_binomial if algo == "binomial" else coll.bcast_ring
            yield from impl(self, nbytes, root, tag, segs)
            return
        tag = self._next_collective_tag()
        vrank = (self.rank - root) % n
        mask = 1
        while mask < n:
            if vrank & mask:
                parent = ((vrank ^ mask) + root) % n
                handle = self.session.irecv(source=self.peer_name(parent), tag=tag)
                yield from self.session.wait(handle)
                break
            mask <<= 1
        # The loop leaves ``mask`` at the stride above this rank's highest
        # forwarding distance (root: past the top); descend and forward.
        mask >>= 1
        while mask > 0:
            if vrank + mask < n:
                child = ((vrank + mask) + root) % n
                self.session.isend(self.peer_name(child), nbytes, tag=tag)
            mask >>= 1

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ConfigurationError(f"root {root} outside 0..{self.size - 1}")

    def gather(
        self, size: "int | str", root: int = 0,
        algorithm: Optional[str] = None,
    ) -> Iterator:
        """Gather of ``size`` bytes per rank to ``root``.

        ``algorithm``: ``naive`` (linear, the default), ``binomial``
        (combining tree), ``ring`` (neighbour pipeline), or ``auto``.
        """
        body = self._gather_impl(size, root, algorithm)
        if self._profiling():
            yield from self._profile("gather", _safe_size(size), body)
        else:
            yield from body

    def _gather_impl(
        self, size: "int | str", root: int, algorithm: Optional[str]
    ) -> Iterator:
        self._check_root(root)
        nbytes = parse_size(size)
        if self.size > 1:
            algo = self._resolve_algorithm("gather", algorithm, nbytes)
            if algo != "naive":
                tag = self._next_collective_tag(span=1)
                impl = (
                    coll.gather_binomial if algo == "binomial" else coll.gather_ring
                )
                yield from impl(self, nbytes, root, tag)
                return
        tag = self._next_collective_tag()
        if self.rank == root:
            handles = [
                self.session.irecv(source=self.peer_name(r), tag=tag)
                for r in range(self.size)
                if r != root
            ]
            for h in handles:
                yield from self.session.wait(h)
        else:
            msg = self.session.isend(self.peer_name(root), nbytes, tag=tag)
            yield from self.session.wait(msg)

    def alltoall(
        self, size: "int | str", algorithm: Optional[str] = None
    ) -> Iterator:
        """Each rank sends ``size`` bytes to every other rank.

        ``algorithm``: ``naive`` (post everything at once, the default),
        ``ring`` (rank-shifted pairwise rounds — no port storm),
        ``doubling`` (Bruck, log rounds of aggregated blocks), ``rails``
        (RailS-style segmented/balanced schedule), or ``auto``.
        """
        body = self._alltoall_impl(size, algorithm)
        if self._profiling():
            yield from self._profile("alltoall", _safe_size(size), body)
        else:
            yield from body

    def _alltoall_impl(
        self, size: "int | str", algorithm: Optional[str]
    ) -> Iterator:
        nbytes = parse_size(size)
        n = self.size
        if n > 1:
            algo = self._resolve_algorithm("alltoall", algorithm, nbytes)
            if algo != "naive":
                if algo == "ring":
                    tag = self._next_collective_tag(span=n)
                    yield from coll.alltoall_ring(self, nbytes, tag)
                elif algo == "doubling":
                    span = max(1, math.ceil(math.log2(n)))
                    tag = self._next_collective_tag(span=span)
                    yield from coll.alltoall_doubling(self, nbytes, tag)
                else:  # rails
                    matrix = coll.uniform_matrix(n, nbytes)
                    yield from self._alltoallv_rails(matrix)
                return
        tag = self._next_collective_tag()
        handles = [
            self.session.irecv(source=self.peer_name(r), tag=tag)
            for r in range(self.size)
            if r != self.rank
        ]
        for r in range(self.size):
            if r != self.rank:
                self.session.isend(self.peer_name(r), nbytes, tag=tag)
        for h in handles:
            yield from self.session.wait(h)

    def scatter(self, size: "int | str", root: int = 0) -> Iterator:
        """Root sends a distinct ``size``-byte block to every other rank.

        Linear (the root owns all the data, so the tree variants only
        move *more* bytes; linear matches MPICH's default for scatter of
        large blocks).
        """
        body = self._scatter_impl(size, root)
        if self._profiling():
            yield from self._profile("scatter", _safe_size(size), body)
        else:
            yield from body

    def _scatter_impl(self, size: "int | str", root: int) -> Iterator:
        self._check_root(root)
        nbytes = parse_size(size)
        self._last_algorithm = "linear"
        tag = self._next_collective_tag()
        if self.rank == root:
            last: Optional[Message] = None
            for r in range(self.size):
                if r != root:
                    last = self.session.isend(self.peer_name(r), nbytes, tag=tag)
            if last is not None:
                yield from self.session.wait(last)
        else:
            handle = self.session.irecv(source=self.peer_name(root), tag=tag)
            yield from self.session.wait(handle)

    def allgather(
        self, size: "int | str", algorithm: Optional[str] = None
    ) -> Iterator:
        """Every rank ends up with every rank's ``size``-byte block.

        ``algorithm``: ``naive`` (Bruck/dissemination, the default),
        ``ring`` (n-1 neighbour rounds, bandwidth-optimal), ``doubling``
        (recursive doubling on power-of-two worlds), or ``auto``.
        """
        body = self._allgather_impl(size, algorithm)
        if self._profiling():
            yield from self._profile("allgather", _safe_size(size), body)
        else:
            yield from body

    def _allgather_impl(
        self, size: "int | str", algorithm: Optional[str]
    ) -> Iterator:
        n = self.size
        nbytes = parse_size(size)
        if n == 1:
            return
        algo = self._resolve_algorithm("allgather", algorithm, nbytes)
        if algo != "naive":
            if algo == "ring":
                tag = self._next_collective_tag(span=n - 1)
                yield from coll.allgather_ring(self, nbytes, tag)
            else:  # doubling
                span = max(1, math.ceil(math.log2(n)))
                tag = self._next_collective_tag(span=span)
                yield from coll.allgather_doubling(self, nbytes, tag)
            return
        base_tag = self._next_collective_tag()
        round_no = 0
        dist = 1
        accumulated = 1
        while dist < n:
            peer_to = (self.rank - dist) % n
            peer_from = (self.rank + dist) % n
            block = min(accumulated, n - accumulated) * nbytes
            self.session.isend(
                self.peer_name(peer_to), max(1, block), tag=base_tag + round_no
            )
            handle = self.session.irecv(
                source=self.peer_name(peer_from), tag=base_tag + round_no
            )
            yield from self.session.wait(handle)
            accumulated = min(n, accumulated * 2)
            dist *= 2
            round_no += 1

    def reduce(
        self, size: "int | str", root: int = 0,
        algorithm: Optional[str] = None,
    ) -> Iterator:
        """Reduction of ``size``-byte contributions to ``root``.

        ``algorithm``: ``naive`` (whole-message binomial tree, the
        default — the mirror image of :meth:`bcast`), ``binomial``
        (segmented/pipelined tree), ``ring`` (reduce-scatter + block
        gather), or ``auto``.  Combination cost is the receive itself —
        payloads are sizes, not values.
        """
        body = self._reduce_impl(size, root, algorithm)
        if self._profiling():
            yield from self._profile("reduce", _safe_size(size), body)
        else:
            yield from body

    def _reduce_impl(
        self, size: "int | str", root: int, algorithm: Optional[str]
    ) -> Iterator:
        n = self.size
        self._check_root(root)
        nbytes = parse_size(size)
        if n == 1:
            return
        algo = self._resolve_algorithm("reduce", algorithm, nbytes)
        if algo != "naive":
            if algo == "ring":
                tag = self._next_collective_tag(span=n)
                yield from coll.reduce_ring(self, nbytes, root, tag)
                return
            segs = coll.pipeline_segments(nbytes, self.world.rail_estimators())
            tag = self._next_collective_tag(span=len(segs))
            yield from coll.reduce_binomial(self, nbytes, root, tag, segs)
            return
        tag = self._next_collective_tag()
        vrank = (self.rank - root) % n
        # Receive from children: strides below our lowest set bit.
        mask = 1
        while mask < n:
            if vrank & mask:
                break
            child_v = vrank + mask
            if child_v < n:
                child = (child_v + root) % n
                handle = self.session.irecv(source=self.peer_name(child), tag=tag)
                yield from self.session.wait(handle)
            mask <<= 1
        # Then send our combined contribution to the parent (root: none).
        if vrank != 0:
            parent = ((vrank ^ mask) + root) % n
            msg = self.session.isend(self.peer_name(parent), nbytes, tag=tag)
            yield from self.session.wait(msg)

    def alltoallv(
        self,
        matrix: Sequence[Sequence["int | str"]],
        algorithm: Optional[str] = None,
    ) -> Iterator:
        """Irregular all-to-all from a global n×n traffic ``matrix``
        (``matrix[i][j]`` = bytes rank i sends rank j; zero diagonal).

        Every rank receives the same matrix — the traffic-engineering
        setting of RailS, where the demand is known (e.g. an MoE
        router's expert counts).  ``algorithm``: ``naive`` (one message
        per flow, posted at once — uniform striping) or ``rails`` (the
        segmented, rank-shifted, windowed balanced schedule); ``auto``
        picks ``rails``.
        """
        body = self._alltoallv_impl(matrix, algorithm)
        if self._profiling():
            try:
                nbytes = sum(_safe_size(v) if v else 0 for v in matrix[self.rank])
            except (TypeError, IndexError):
                nbytes = 0
            yield from self._profile("alltoallv", nbytes, body)
        else:
            yield from body

    def _alltoallv_impl(
        self,
        matrix: Sequence[Sequence["int | str"]],
        algorithm: Optional[str],
    ) -> Iterator:
        n = self.size
        if len(matrix) != n or any(len(row) != n for row in matrix):
            raise ConfigurationError(
                f"traffic matrix must be {n}x{n} for this world"
            )
        try:
            sizes = [
                [parse_size(v) if v else 0 for v in row] for row in matrix
            ]
        except ValueError as exc:
            raise ConfigurationError(
                f"bad traffic matrix entry: {exc}"
            ) from exc
        for i in range(n):
            if sizes[i][i]:
                raise ConfigurationError(
                    f"traffic matrix has a self-send at rank {i} "
                    "(self-sends are not modelled)"
                )
            for j in range(n):
                if sizes[i][j] < 0:
                    raise ConfigurationError(
                        f"negative traffic matrix entry [{i}][{j}]: {sizes[i][j]}"
                    )
        peak = max((s for row in sizes for s in row), default=0)
        algo = self._resolve_algorithm("alltoallv", algorithm, max(1, peak))
        if algo == "replan":
            yield from self._alltoallv_replan(sizes)
            return
        if algo in ("rails", "auto"):
            yield from self._alltoallv_rails(sizes)
            return
        tag = self._next_collective_tag()
        yield from coll.alltoallv_naive(self, sizes, tag)

    def _rails_tag(self, sizes: List[List[int]], ests) -> int:
        """One tag block spanning the widest flow's segment count."""
        span = max(
            (
                len(coll.rails_segments(s, ests))
                for row in sizes
                for s in row
                if s > 0
            ),
            default=1,
        )
        return self._next_collective_tag(span=span)

    def _alltoallv_rails(self, sizes: List[List[int]]) -> Iterator:
        """Shared rails path for :meth:`alltoall`/:meth:`alltoallv`."""
        ests = self.world.rail_estimators()
        tag = self._rails_tag(sizes, ests)
        yield from coll.alltoallv_rails(self, sizes, tag, ests)

    def _alltoallv_replan(self, sizes: List[List[int]]) -> Iterator:
        """Re-planning balanced path (``algorithm="replan"``)."""
        ests = self.world.rail_estimators()
        tag = self._rails_tag(sizes, ests)
        profiles = self.world.cluster.profiles
        price = (
            self.world.selector().hop
            if profiles is not None and profiles.estimators
            else None
        )
        yield from coll.alltoallv_rails_replan(
            self, sizes, tag, ests, price=price
        )


class MpiWorld:
    """A set of ranks over a multirail fabric (full mesh by default)."""

    def __init__(
        self,
        cluster: Cluster,
        size: int,
        node_names: Optional[Sequence[str]] = None,
        collectives: Optional[Dict[str, str]] = None,
    ) -> None:
        self.cluster = cluster
        self.size = size
        if node_names is None:
            node_names = [_rank_name(r) for r in range(size)]
        if len(node_names) != size:
            raise ConfigurationError(
                f"world of {size} ranks got {len(node_names)} node names"
            )
        self._node_names: List[str] = list(node_names)
        overrides = dict(collectives) if collectives else {}
        if not overrides and cluster.collectives:
            overrides = dict(cluster.collectives)
        self.collectives: Dict[str, str] = coll.validate_overrides(overrides)
        self._selector: Optional[AlgorithmSelector] = None
        self.comms: List[Communicator] = [Communicator(self, r) for r in range(size)]

    def __repr__(self) -> str:
        return f"<MpiWorld size={self.size}>"

    def node_name(self, rank: int) -> str:
        """Cluster node name hosting a rank."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside 0..{self.size - 1}")
        return self._node_names[rank]

    def rail_estimators(self) -> List:
        """Sampled per-technology estimators (sorted; empty unsampled).

        The hetero-split curves the collective algorithms size their
        pipeline segments from.
        """
        profiles = self.cluster.profiles
        if profiles is None:
            return []
        return [profiles.estimators[t] for t in sorted(profiles.estimators)]

    def fabric_health(self) -> Optional[coll.FabricHealth]:
        """Liveness view for feasibility filtering, or ``None`` healthy.

        Only built when a fault schedule is armed against the cluster —
        an un-faulted world skips the probing entirely, so the healthy
        ``auto`` path stays byte-identical to pre-fault-surface builds.
        """
        if getattr(self.cluster, "fault_injector", None) is None:
            return None
        return coll.FabricHealth(self.cluster, self._node_names)

    def selector(self) -> AlgorithmSelector:
        """The cost-model selector behind ``algorithm="auto"``."""
        if self._selector is None:
            profiles = self.cluster.profiles
            if profiles is None or not profiles.estimators:
                raise ConfigurationError(
                    'algorithm="auto" needs sampled profiles; build the '
                    "cluster with sampling enabled"
                )
            self._selector = AlgorithmSelector(profiles.estimators)
        return self._selector

    @classmethod
    def create(
        cls,
        n_ranks: Optional[int] = None,
        strategy: StrategySpec = "hetero_split",
        rails: Sequence[str] = ("myri10g", "quadrics"),
        profiles=None,
        fabric: Optional[Fabric] = None,
        collectives: Optional[Dict[str, str]] = None,
        observability: bool = False,
    ) -> "MpiWorld":
        """Build a world — a full mesh by default (every rank pair joined
        by one wire per technology, the paper's testbed generalized), or
        any :class:`~repro.hardware.topology.Fabric`::

            MpiWorld.create(8)                                # full mesh
            MpiWorld.create(fabric=Fabric.fat_tree(16))       # switched
            MpiWorld.create(8, collectives={"alltoall": "ring"})

        ``collectives`` sets the world's default algorithm per
        collective; individual calls can still override it.
        ``observability=True`` arms the full obs bundle (tracer, metrics,
        link/spine accounting, collective profiler, flight recorder).
        """
        if fabric is not None:
            if n_ranks is not None and n_ranks != fabric.size:
                raise ConfigurationError(
                    f"n_ranks {n_ranks} != fabric size {fabric.size}; "
                    "pass one or the other"
                )
            ranked = fabric.with_node_names(
                [_rank_name(r) for r in range(fabric.size)]
            )
            builder = ClusterBuilder(strategy=strategy).fabric(ranked)
            if profiles is not None:
                builder.sampling(profiles=profiles)
            if observability:
                builder.observability()
            return cls(
                builder.build(), fabric.size, collectives=collectives
            )
        if n_ranks is None:
            raise ConfigurationError("pass n_ranks or a fabric")
        if n_ranks < 2:
            raise ConfigurationError(f"an MPI world needs >= 2 ranks, got {n_ranks}")
        builder = ClusterBuilder(strategy=strategy)
        for r in range(n_ranks):
            builder.add_node(_rank_name(r))
        for a in range(n_ranks):
            for b in range(a + 1, n_ranks):
                for rail in rails:
                    builder.add_rail(rail, _rank_name(a), _rank_name(b))
        if profiles is not None:
            builder.sampling(profiles=profiles)
        if observability:
            builder.observability()
        return cls(builder.build(), n_ranks, collectives=collectives)

    @classmethod
    def from_cluster(
        cls,
        cluster: Cluster,
        node_names: Optional[Sequence[str]] = None,
        collectives: Optional[Dict[str, str]] = None,
    ) -> "MpiWorld":
        """Wrap an already-built cluster: one rank per node.

        Rank order follows ``node_names``, else the cluster's fabric
        description (config-built clusters carry one), else sorted node
        names.  Collective defaults fall back to the cluster's
        (:meth:`ClusterBuilder.collectives`, the config ``collectives:``
        section).
        """
        if node_names is None:
            if cluster.fabric is not None:
                node_names = list(cluster.fabric.nodes)
            else:
                node_names = sorted(cluster.engines)
        unknown = [n for n in node_names if n not in cluster.engines]
        if unknown:
            raise ConfigurationError(
                f"unknown node(s) {unknown}; have {sorted(cluster.engines)}"
            )
        return cls(
            cluster, len(node_names), node_names=node_names,
            collectives=collectives,
        )

    def comm(self, rank: int) -> Communicator:
        try:
            return self.comms[rank]
        except IndexError:
            raise ConfigurationError(f"no rank {rank}; world size {self.size}") from None

    def spawn_all(self, program: Callable[[Communicator], Iterator]) -> List:
        """Start ``program(comm)`` as one simulation process per rank."""
        return [
            self.cluster.sim.spawn(program(comm), name=f"rank{comm.rank}")
            for comm in self.comms
        ]

    def run(self, until: Optional[float] = None) -> "RunResult":
        return self.cluster.run(until=until)
