"""Algorithmic collectives: ring / binomial / recursive-doubling schedules.

The naive compositions in :mod:`repro.api.mpi` move the right bytes but
with textbook-free schedules (linear gathers, post-everything
all-to-alls).  This module supplies the classic algorithms — selectable
per call (``comm.bcast(..., algorithm="ring")``), per world
(``MpiWorld.create(..., collectives={...})``), or by the cost-model
:class:`AlgorithmSelector` (``algorithm="auto"``), following the
model-selects-algorithm pattern of Barchet-Estefanel & Mounié's
intra-cluster collective tuning.

Every per-hop send rides the engine unchanged, so a large hop is still
hetero-split across all rails by the paper's strategy; the *pipeline
segmentation* here additionally cuts large payloads into per-hop chunks
sized from the same sampled curves
(:func:`repro.core.strategies.striped_transfer_time`), which lets ring
and tree schedules overlap hops instead of store-and-forwarding whole
messages.

The RailS-style balanced all-to-all (``algorithm="rails"``) spreads a
*skewed* traffic matrix: flows are segmented, destinations are walked in
rank-shifted round-robin order, and a bounded send window paces each
source — so a hot (MoE-shaped) destination column is fed evenly from all
sources while every rail stays busy, instead of head-of-line blocking
whole queues behind the elephant flows.

All schedules are deterministic: same world + same calls = bit-identical
timestamps.  The naive compositions remain the default and are
selectable explicitly as ``algorithm="naive"``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.packets import Message
from repro.core.split import equal_split
from repro.core.strategies import striped_transfer_time
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import (mpi imports us)
    from repro.api.mpi import Communicator
    from repro.core.estimator import NicEstimator

#: algorithm names accepted per collective ("auto" = cost-model choice)
VALID_ALGORITHMS: Dict[str, Tuple[str, ...]] = {
    "bcast": ("naive", "binomial", "ring", "doubling", "auto"),
    "gather": ("naive", "binomial", "ring", "auto"),
    "allgather": ("naive", "ring", "doubling", "auto"),
    "reduce": ("naive", "binomial", "ring", "auto"),
    "alltoall": ("naive", "ring", "doubling", "rails", "auto"),
    "alltoallv": ("naive", "rails", "replan", "auto"),
}

#: per-hop pipeline segmentation: never cut below this
MIN_SEGMENT_BYTES = 16 * 1024
#: a segment must cost at least this many fixed per-hop costs
PIPELINE_COST_RATIO = 8.0
#: upper bound on segments per hop (bounds tag-block spans)
MAX_SEGMENTS = 32
#: rails-balanced all-to-all: cap on segments per flow
BALANCE_MAX_SEGMENTS = 32
#: re-planning all-to-all: sends in flight between checkpoint looks
REPLAN_WINDOW = 4


def validate_algorithm(collective: str, algorithm: str) -> str:
    """``algorithm`` checked against the collective's choices.

    Raises :class:`ConfigurationError` naming every valid choice —
    unknown names never pass silently.
    """
    try:
        valid = VALID_ALGORITHMS[collective]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {collective!r}; known: "
            f"{sorted(VALID_ALGORITHMS)}"
        ) from None
    if algorithm not in valid:
        raise ConfigurationError(
            f"unknown {collective} algorithm {algorithm!r}; "
            f"valid choices: {list(valid)}"
        )
    return algorithm


def validate_overrides(overrides: Mapping[str, str]) -> Dict[str, str]:
    """A ``{collective: algorithm}`` mapping, fully validated."""
    if not isinstance(overrides, Mapping):
        raise ConfigurationError(
            f"collectives overrides must map collective -> algorithm; "
            f"got {overrides!r}"
        )
    out: Dict[str, str] = {}
    for collective, algorithm in overrides.items():
        validate_algorithm(str(collective), str(algorithm))
        out[str(collective)] = str(algorithm)
    return out


# --------------------------------------------------------------------- #
# per-hop pipeline segmentation (reuses the sampled hetero-split curves)
# --------------------------------------------------------------------- #


def pipeline_segments(
    nbytes: int,
    estimators: Sequence["NicEstimator"],
    max_segments: int = MAX_SEGMENTS,
    min_bytes: Optional[int] = None,
) -> List[int]:
    """Cut one hop's payload into pipeline segments.

    The segment size is the smallest power-of-two ≥ ``min_bytes``
    (default :data:`MIN_SEGMENT_BYTES`) whose predicted striped hop time
    (:func:`striped_transfer_time` — the hetero-split waterfill over the
    sampled curves) amortizes the fixed per-hop cost by
    :data:`PIPELINE_COST_RATIO`; without profiles the message stays
    whole.  Deterministic, and exact: segment sizes always sum to
    ``nbytes``.
    """
    if nbytes <= 0:
        return [nbytes] if nbytes else []
    floor = MIN_SEGMENT_BYTES if min_bytes is None else max(1, min_bytes)
    if not estimators or nbytes <= floor:
        return [nbytes]
    alpha = striped_transfer_time(estimators, 1)
    target = PIPELINE_COST_RATIO * alpha
    seg = 1 << max(0, (floor - 1).bit_length())
    while seg < nbytes and striped_transfer_time(estimators, seg) < target:
        seg *= 2
    n_seg = max(1, min(max_segments, -(-nbytes // seg)))
    return equal_split(nbytes, n_seg)


def rails_segment_floor(estimators: Sequence["NicEstimator"]) -> int:
    """Smallest segment the balanced all-to-all will cut.

    Every segment must stay *above* every rail's rendezvous threshold:
    an eager-sized segment would ride a single rail whole, silently
    giving up the hetero-split striping the balancer exists to feed.
    """
    thresholds = [est.rdv_threshold() + 1 for est in estimators]
    return max([MIN_SEGMENT_BYTES] + thresholds)


# --------------------------------------------------------------------- #
# cost-model algorithm selection
# --------------------------------------------------------------------- #


class AlgorithmSelector:
    """Message size × ranks × rail profiles → collective algorithm.

    The cost model prices every implemented schedule with the same
    striped-hop primitive the planner uses (α = fixed per-hop cost,
    t(x) = predicted striped time of an x-byte hop) and picks the
    cheapest — the "fast tuning" decision table of Barchet-Estefanel &
    Mounié, computed from this fabric's sampled curves instead of
    offline calibration runs.
    """

    def __init__(
        self,
        estimators: Mapping[str, "NicEstimator"],
        technologies: Optional[Sequence[str]] = None,
    ) -> None:
        if technologies is None:
            technologies = sorted(estimators)
        missing = [t for t in technologies if t not in estimators]
        if missing:
            raise ConfigurationError(
                f"no sampled profile for rail(s) {missing}; "
                f"have {sorted(estimators)}"
            )
        if not technologies:
            raise ConfigurationError("AlgorithmSelector needs >= 1 rail profile")
        self.technologies = tuple(technologies)
        self.estimators = [estimators[t] for t in self.technologies]
        self._hop_memo: Dict[int, float] = {}
        #: measured/predicted blend applied to unmeasured sizes after
        #: :meth:`calibrate`; 1.0 until measurements arrive
        self.hop_scale: float = 1.0

    def hop(self, size: int) -> float:
        """Predicted striped one-hop time of ``size`` bytes (µs)."""
        size = max(1, int(size))
        t = self._hop_memo.get(size)
        if t is None:
            t = striped_transfer_time(self.estimators, size) * self.hop_scale
            self._hop_memo[size] = t
        return t

    def calibrate(self, measured: Mapping[int, float]) -> float:
        """Blend measured per-size hop times into the cost model.

        ``measured`` is a ``size → mean measured µs`` table — exactly
        what :func:`repro.obs.collective.measured_hop_table` produces
        from the collective profiler's hop rows.  Measured sizes
        override the model's prediction outright; unmeasured sizes are
        scaled by the mean measured/predicted ratio, so queueing and
        contention the contention-blind model missed shift every
        decision consistently.  Deterministic: iteration is size-sorted
        and the memo is rebuilt from scratch.  Returns the ratio
        (1.0 when nothing usable was measured).
        """
        overrides: Dict[int, float] = {}
        ratios: List[float] = []
        for size in sorted(measured):
            s = max(1, int(size))
            t = float(measured[size])
            if t <= 0:
                continue
            base = striped_transfer_time(self.estimators, s)
            if base > 0:
                ratios.append(t / base)
            overrides[s] = t
        if overrides:
            self.hop_scale = (
                sum(ratios) / len(ratios) if ratios else self.hop_scale
            )
            self._hop_memo.clear()
            self._hop_memo.update(overrides)
        return self.hop_scale

    def _segments_of(self, size: int) -> int:
        return len(pipeline_segments(size, self.estimators))

    def costs(
        self,
        collective: str,
        size: int,
        ranks: int,
        health: Optional["FabricHealth"] = None,
    ) -> Dict[str, float]:
        """Predicted completion (µs) per implemented algorithm.

        With a :class:`FabricHealth` view, algorithms whose schedule
        requires a currently-down link are excluded outright — pricing a
        schedule that cannot deliver is worse than useless.  Raises
        :class:`ConfigurationError` only when *no* algorithm is feasible.
        """
        if ranks < 2:
            raise ConfigurationError(f"cost model needs >= 2 ranks, got {ranks}")
        if size < 1:
            raise ConfigurationError(f"cost model needs a positive size: {size}")
        n, s, t = ranks, size, self.hop
        rounds = max(1, math.ceil(math.log2(n)))
        seg_count = self._segments_of(s)
        seg = max(1, s // seg_count)
        out: Dict[str, float] = {}
        if collective == "bcast":
            out["naive"] = rounds * t(s)
            out["binomial"] = (rounds + seg_count - 1) * t(seg)
            out["ring"] = (n - 2 + seg_count) * t(seg)
            block = max(1, s // n)
            scatter = sum(t(max(1, s >> (k + 1))) for k in range(rounds))
            gather_back = sum(
                t(min(1 << k, n - (1 << k)) * block)
                for k in range(rounds)
                if (1 << k) < n
            )
            out["doubling"] = scatter + gather_back
        elif collective == "gather":
            out["naive"] = (n - 1) * t(s)
            out["binomial"] = sum(
                t(min(1 << k, n - (1 << k)) * s)
                for k in range(rounds)
                if (1 << k) < n
            )
            out["ring"] = sum(t(j * s) for j in range(1, n))
        elif collective == "allgather":
            bruck = sum(
                t(min(1 << k, n - (1 << k)) * s)
                for k in range(rounds)
                if (1 << k) < n
            )
            out["naive"] = bruck
            out["ring"] = (n - 1) * t(s)
            out["doubling"] = (
                sum(t((1 << k) * s) for k in range(rounds))
                if n & (n - 1) == 0
                else bruck
            )
        elif collective == "reduce":
            out["naive"] = rounds * t(s)
            out["binomial"] = (rounds + seg_count - 1) * t(seg)
            block = max(1, s // n)
            out["ring"] = 2 * (n - 1) * t(block)
        elif collective in ("alltoall", "alltoallv"):
            # Naive pays the port storm: every source walks destinations
            # in the same order, so early ports saturate while late ones
            # idle — roughly doubling the critical path (see
            # docs/collectives.md).
            out["naive"] = 2 * (n - 1) * t(s)
            out["ring"] = (n - 1) * t(s) + t(s)
            out["doubling"] = sum(
                t(max(1, sum(1 for x in range(1, n) if x & (1 << k)) * s))
                for k in range(rounds)
                if (1 << k) < n
            )
            out["rails"] = out["ring"]
            if collective == "alltoallv":
                # Only the naive and rails schedules take a matrix.
                out = {k: v for k, v in out.items() if k in ("naive", "rails")}
        else:
            raise ConfigurationError(
                f"unknown collective {collective!r}; known: "
                f"{sorted(VALID_ALGORITHMS)}"
            )
        if health is not None:
            feasible = {
                name: cost
                for name, cost in out.items()
                if health.feasible(collective, name, ranks)
            }
            if not feasible:
                raise ConfigurationError(
                    f"no feasible {collective} algorithm: every schedule "
                    f"in {sorted(out)} requires a down link or spine"
                )
            out = feasible
        return out

    def select(
        self,
        collective: str,
        size: int,
        ranks: int,
        health: Optional["FabricHealth"] = None,
    ) -> str:
        """The cheapest algorithm for this shape (deterministic ties)."""
        costs = self.costs(collective, size, ranks, health=health)
        return min(costs.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def table(
        self,
        collective: str,
        size: int,
        ranks: int,
        health: Optional["FabricHealth"] = None,
    ) -> str:
        """Human-readable cost table (the ``cli collectives`` view)."""
        costs = self.costs(collective, size, ranks, health=health)
        pick = self.select(collective, size, ranks, health=health)
        lines = [
            f"{collective} of {size}B across {ranks} ranks "
            f"on {'+'.join(self.technologies)}:"
        ]
        for name, cost in sorted(costs.items(), key=lambda kv: kv[1]):
            marker = " <- selected" if name == pick else ""
            lines.append(f"  {name:<10} {cost:>12.1f} us predicted{marker}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# fabric health: which schedules can still deliver
# --------------------------------------------------------------------- #


def required_pairs(
    collective: str, algorithm: str, ranks: int, root: int = 0
) -> Set[Tuple[int, int]]:
    """Rank pairs an algorithm's schedule must be able to reach.

    Undirected ``(i, j)`` pairs (``i < j``) mirroring each schedule's
    communication pattern: tree edges for binomial schedules, successor
    edges for rings, XOR/dissemination partners for doubling, and all
    pairs for the post-everything and balanced all-to-alls.  The
    feasibility side of the cost model: an algorithm is only priceable
    if every one of its pairs has a live path.
    """
    validate_algorithm(collective, algorithm)
    if algorithm == "auto":
        raise ConfigurationError(
            "required_pairs wants a concrete algorithm, not 'auto'"
        )
    n = ranks
    if n < 2:
        return set()
    pairs: Set[Tuple[int, int]] = set()

    def add(a: int, b: int) -> None:
        a, b = a % n, b % n
        if a != b:
            pairs.add((min(a, b), max(a, b)))

    def add_binomial_tree() -> None:
        for v in range(1, n):
            parent, _ = _binomial_parent_children(v, n)
            if parent is not None:
                add((v + root) % n, (parent + root) % n)

    def add_ring() -> None:
        for i in range(n):
            add(i, (i + 1) % n)

    def add_dissemination() -> None:
        dist = 1
        while dist < n:
            for i in range(n):
                add(i, (i + dist) % n)
            dist *= 2

    def add_all() -> None:
        for i in range(n):
            for j in range(i + 1, n):
                pairs.add((i, j))

    if collective in ("alltoall", "alltoallv"):
        if algorithm == "doubling":
            add_dissemination()
        else:  # naive / ring / rails / replan all touch every pair
            add_all()
    elif algorithm == "ring":
        add_ring()
        if collective == "reduce":
            # Reduce-scatter rides the ring; the final block gather
            # converges on the root directly.
            for j in range(n):
                add(j, root)
    elif algorithm == "doubling":  # bcast doubling, allgather doubling
        if collective == "bcast":
            add_binomial_tree()
        add_dissemination()
    elif collective == "gather" and algorithm == "naive":
        for j in range(n):
            add(j, root)
    elif collective == "allgather":  # naive = dissemination
        add_dissemination()
    else:
        # bcast/reduce naive+binomial, gather binomial: the mask-walk tree
        add_binomial_tree()
    return pairs


class FabricHealth:
    """Liveness view over a built cluster's rails and fabric.

    ``alive(i, j)`` is True when *any* rail between ranks ``i`` and
    ``j`` can currently deliver: both NICs up, both switch edge links up
    and — for inter-pod fat-tree flows — a usable spine (any up spine
    when the switch routes adaptively, the statically hashed one
    otherwise).  Purely read-only: probing health mutates no simulator
    state.
    """

    def __init__(self, cluster, node_names: Sequence[str]) -> None:
        self.cluster = cluster
        self.node_names = list(node_names)
        self._memo: Dict[Tuple[str, str], bool] = {}

    def invalidate(self) -> None:
        """Drop memoized liveness (call after any fault fires)."""
        self._memo.clear()

    def _rail_alive(self, nic, peer_node: str) -> bool:
        from repro.networks.switch import FatTreeSwitch, Switch
        from repro.networks.wire import Wire

        if not nic.is_up:
            return False
        wire = nic.wire
        if wire is None:
            return False
        if isinstance(wire, Switch):
            ports = {p.machine.name: p for p in wire._ports}
            peer = ports.get(peer_node)
            if peer is None or not peer.is_up:
                return False
            src_node = nic.machine.name
            if not (wire.link_is_up(src_node) and wire.link_is_up(peer_node)):
                return False
            if isinstance(wire, FatTreeSwitch):
                si = wire._ports.index(nic)
                di = wire._ports.index(peer)
                if si // wire.pod_size != di // wire.pod_size:
                    if wire.adaptive:
                        return any(wire._spine_up)
                    return wire._spine_up[wire._spine_for(si, di)]
            return True
        if isinstance(wire, Wire):
            peer = wire.nic_b if wire.nic_a is nic else wire.nic_a
            return peer.machine.name == peer_node and peer.is_up
        return False

    def node_pair_alive(self, node_a: str, node_b: str) -> bool:
        """Any live rail between two cluster nodes (memoized)."""
        if node_a == node_b:
            return True
        key = (node_a, node_b) if node_a < node_b else (node_b, node_a)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        machine = self.cluster.machines.get(node_a)
        alive = machine is not None and any(
            self._rail_alive(nic, node_b) for nic in machine.nics
        )
        self._memo[key] = alive
        return alive

    def alive(self, i: int, j: int) -> bool:
        """Any live rail between ranks ``i`` and ``j``."""
        return self.node_pair_alive(self.node_names[i], self.node_names[j])

    def feasible(
        self, collective: str, algorithm: str, ranks: int, root: int = 0
    ) -> bool:
        """Can this schedule's every required pair still communicate?"""
        return all(
            self.alive(i, j)
            for i, j in required_pairs(collective, algorithm, ranks, root)
        )


# --------------------------------------------------------------------- #
# schedule helpers
# --------------------------------------------------------------------- #


def _vranks(comm: "Communicator", root: int) -> Tuple[int, int]:
    """(virtual rank, size) with ``root`` mapped to 0."""
    return (comm.rank - root) % comm.size, comm.size


def _binomial_parent_children(
    vrank: int, n: int
) -> Tuple[Optional[int], List[int]]:
    """Parent and children (virtual ranks) in the binomial bcast tree.

    Mirrors the naive bcast's mask walk: the parent clears the lowest
    set bit; children sit at decreasing strides below it.
    """
    mask = 1
    parent: Optional[int] = None
    while mask < n:
        if vrank & mask:
            parent = vrank ^ mask
            break
        mask <<= 1
    mask >>= 1
    children = []
    while mask > 0:
        if vrank + mask < n:
            children.append(vrank + mask)
        mask >>= 1
    return parent, children


def _reduce_children_parent(
    vrank: int, n: int
) -> Tuple[List[int], Optional[int], int]:
    """Children (ascending stride), parent, and own subtree size in the
    binomial reduce/gather tree (the naive reduce's mask walk)."""
    children = []
    mask = 1
    while mask < n:
        if vrank & mask:
            break
        child = vrank + mask
        if child < n:
            children.append(child)
        mask <<= 1
    parent = (vrank ^ mask) if vrank != 0 else None
    subtree = min(mask, n - vrank)
    return children, parent, subtree


# --------------------------------------------------------------------- #
# broadcast
# --------------------------------------------------------------------- #


def bcast_binomial(
    comm: "Communicator", nbytes: int, root: int, tag: int,
    segments: Sequence[int],
) -> Iterator:
    """Pipelined binomial tree: segment k is forwarded to every child as
    soon as it arrives, so tree levels overlap on large payloads."""
    v, n = _vranks(comm, root)
    parent, children = _binomial_parent_children(v, n)
    name = comm.peer_name
    actual = lambda vr: (vr + root) % n  # noqa: E731 - tiny mapper
    for k, seg in enumerate(segments):
        if parent is not None:
            handle = comm.session.irecv(source=name(actual(parent)), tag=tag + k)
            yield from comm.session.wait(handle)
        for child in children:
            comm.session.isend(name(actual(child)), seg, tag=tag + k)


def bcast_ring(
    comm: "Communicator", nbytes: int, root: int, tag: int,
    segments: Sequence[int],
) -> Iterator:
    """Segmented ring pipeline: n-2+S hop steps instead of S·(n-1)."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    left = ((v - 1) + root) % n
    right = ((v + 1) + root) % n
    for k, seg in enumerate(segments):
        if v != 0:
            handle = comm.session.irecv(source=name(left), tag=tag + k)
            yield from comm.session.wait(handle)
        if v != n - 1:
            comm.session.isend(name(right), seg, tag=tag + k)


def bcast_doubling(
    comm: "Communicator", nbytes: int, root: int, tag: int
) -> Iterator:
    """Van de Geijn large-message broadcast: binomial scatter of n
    blocks, then a dissemination (Bruck) allgather of the blocks —
    ~2×(n-1)/n of the bytes of a binomial tree per link, in 2·log
    rounds."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    actual = lambda vr: (vr + root) % n  # noqa: E731 - tiny mapper
    blocks = equal_split(nbytes, n)

    def span_bytes(start: int, count: int) -> int:
        return sum(blocks[(start + j) % n] for j in range(count))

    # Phase 1: binomial scatter — the child at stride m owns blocks
    # [child, child+m) clipped to n.
    mask = 1
    recv_mask = None
    while mask < n:
        if v & mask:
            recv_mask = mask
            parent = v ^ mask
            handle = comm.session.irecv(source=name(actual(parent)), tag=tag)
            yield from comm.session.wait(handle)
            break
        mask <<= 1
    mask = (recv_mask or mask) >> 1
    while mask > 0:
        child = v + mask
        if child < n:
            size = span_bytes(child, min(mask, n - child))
            comm.session.isend(name(actual(child)), max(1, size), tag=tag)
        mask >>= 1
    # Phase 2: Bruck allgather of the blocks over virtual ranks.
    accumulated = 1
    dist = 1
    round_no = 1
    while dist < n:
        count = min(accumulated, n - accumulated)
        peer_to = actual((v - dist) % n)
        peer_from = actual((v + dist) % n)
        comm.session.isend(
            name(peer_to), max(1, span_bytes(v, count)), tag=tag + round_no
        )
        handle = comm.session.irecv(source=name(peer_from), tag=tag + round_no)
        yield from comm.session.wait(handle)
        accumulated = min(n, accumulated * 2)
        dist *= 2
        round_no += 1


# --------------------------------------------------------------------- #
# gather
# --------------------------------------------------------------------- #


def gather_binomial(
    comm: "Communicator", nbytes: int, root: int, tag: int
) -> Iterator:
    """Binomial-tree gather: subtree blocks combine upward, so the root
    takes ceil(log2 n) receives instead of n-1."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    children, parent, subtree = _reduce_children_parent(v, n)
    for child in children:
        handle = comm.session.irecv(source=name((child + root) % n), tag=tag)
        yield from comm.session.wait(handle)
    if parent is not None:
        msg = comm.session.isend(
            name((parent + root) % n), subtree * nbytes, tag=tag
        )
        yield from comm.session.wait(msg)


def gather_ring(
    comm: "Communicator", nbytes: int, root: int, tag: int
) -> Iterator:
    """Ring gather: blocks accumulate around the ring toward the root —
    one long pipeline, each node touching exactly one neighbour."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    if v != n - 1:
        handle = comm.session.irecv(source=name((v + 1 + root) % n), tag=tag)
        yield from comm.session.wait(handle)
    if v != 0:
        msg = comm.session.isend(
            name((v - 1 + root) % n), (n - v) * nbytes, tag=tag
        )
        yield from comm.session.wait(msg)


# --------------------------------------------------------------------- #
# allgather
# --------------------------------------------------------------------- #


def allgather_ring(comm: "Communicator", nbytes: int, tag: int) -> Iterator:
    """Classic ring allgather: n-1 rounds, one block to the right, one
    block from the left — bandwidth-optimal for large blocks."""
    n = comm.size
    name = comm.peer_name
    right = (comm.rank + 1) % n
    left = (comm.rank - 1) % n
    for k in range(n - 1):
        comm.session.isend(name(right), nbytes, tag=tag + k)
        handle = comm.session.irecv(source=name(left), tag=tag + k)
        yield from comm.session.wait(handle)


def allgather_doubling(comm: "Communicator", nbytes: int, tag: int) -> Iterator:
    """Recursive doubling (power-of-two ranks): round k swaps 2^k
    accumulated blocks with the rank XOR 2^k partner.  Non-power-of-two
    worlds fall back to the dissemination (Bruck) schedule."""
    n = comm.size
    name = comm.peer_name
    if n & (n - 1) == 0:
        mask = 1
        round_no = 0
        while mask < n:
            partner = comm.rank ^ mask
            block = mask * nbytes
            handle = comm.session.irecv(source=name(partner), tag=tag + round_no)
            comm.session.isend(name(partner), block, tag=tag + round_no)
            yield from comm.session.wait(handle)
            mask <<= 1
            round_no += 1
        return
    accumulated = 1
    dist = 1
    round_no = 0
    while dist < n:
        peer_to = (comm.rank - dist) % n
        peer_from = (comm.rank + dist) % n
        block = min(accumulated, n - accumulated) * nbytes
        comm.session.isend(name(peer_to), max(1, block), tag=tag + round_no)
        handle = comm.session.irecv(source=name(peer_from), tag=tag + round_no)
        yield from comm.session.wait(handle)
        accumulated = min(n, accumulated * 2)
        dist *= 2
        round_no += 1


# --------------------------------------------------------------------- #
# reduce
# --------------------------------------------------------------------- #


def reduce_binomial(
    comm: "Communicator", nbytes: int, root: int, tag: int,
    segments: Sequence[int],
) -> Iterator:
    """Pipelined binomial reduction: segment k climbs the tree as soon
    as every child delivered it — tree levels overlap on large
    payloads."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    children, parent, _ = _reduce_children_parent(v, n)
    for k, seg in enumerate(segments):
        for child in children:
            handle = comm.session.irecv(
                source=name((child + root) % n), tag=tag + k
            )
            yield from comm.session.wait(handle)
        if parent is not None:
            msg = comm.session.isend(
                name((parent + root) % n), seg, tag=tag + k
            )
            yield from comm.session.wait(msg)


def reduce_ring(
    comm: "Communicator", nbytes: int, root: int, tag: int
) -> Iterator:
    """Ring reduce-scatter then a block gather to the root: every link
    carries ~s/n per round, the bandwidth-optimal large-message shape."""
    v, n = _vranks(comm, root)
    name = comm.peer_name
    blocks = equal_split(nbytes, n)
    right = (v + 1 + root) % n
    left = (v - 1 + root) % n
    for k in range(n - 1):
        send_block = blocks[(v - k) % n]
        comm.session.isend(name(right), max(1, send_block), tag=tag + k)
        handle = comm.session.irecv(source=name(left), tag=tag + k)
        yield from comm.session.wait(handle)
    # Rank v now owns the fully reduced block (v+1) mod n.
    final_tag = tag + n - 1
    if v != 0:
        owned = blocks[(v + 1) % n]
        msg = comm.session.isend(name(root), max(1, owned), tag=final_tag)
        yield from comm.session.wait(msg)
    else:
        handles = [
            comm.session.irecv(source=name((j + root) % n), tag=final_tag)
            for j in range(1, n)
        ]
        for handle in handles:
            yield from comm.session.wait(handle)


# --------------------------------------------------------------------- #
# all-to-all
# --------------------------------------------------------------------- #


def alltoall_ring(comm: "Communicator", nbytes: int, tag: int) -> Iterator:
    """Rank-shifted pairwise exchange: in round k everyone sends to
    rank+k and receives from rank-k, so every output port serves exactly
    one flow per round — no port storm, unlike the naive post-all."""
    n = comm.size
    name = comm.peer_name
    for k in range(1, n):
        dst = (comm.rank + k) % n
        src = (comm.rank - k) % n
        handle = comm.session.irecv(source=name(src), tag=tag + k)
        msg = comm.session.isend(name(dst), nbytes, tag=tag + k)
        yield from comm.session.wait(handle)
        yield from comm.session.wait(msg)


def alltoall_doubling(comm: "Communicator", nbytes: int, tag: int) -> Iterator:
    """Bruck all-to-all: log2(n) rounds of aggregated blocks — ~n·s/2
    bytes per round but only log rounds of fixed costs, the
    small-message winner."""
    n = comm.size
    name = comm.peer_name
    mask = 1
    round_no = 0
    while mask < n:
        count = sum(1 for x in range(1, n) if x & mask)
        peer_to = (comm.rank - mask) % n
        peer_from = (comm.rank + mask) % n
        comm.session.isend(
            name(peer_to), max(1, count * nbytes), tag=tag + round_no
        )
        handle = comm.session.irecv(source=name(peer_from), tag=tag + round_no)
        yield from comm.session.wait(handle)
        mask <<= 1
        round_no += 1


def alltoallv_naive(
    comm: "Communicator", matrix: Sequence[Sequence[int]], tag: int
) -> Iterator:
    """Post-everything irregular exchange (the uniform-striping
    baseline: each flow is one message, hetero-split across rails)."""
    n = comm.size
    name = comm.peer_name
    r = comm.rank
    handles = [
        comm.session.irecv(source=name(src), tag=tag)
        for src in range(n)
        if src != r and matrix[src][r] > 0
    ]
    for dst in range(n):
        if dst != r and matrix[r][dst] > 0:
            comm.session.isend(name(dst), matrix[r][dst], tag=tag)
    for handle in handles:
        yield from comm.session.wait(handle)


def rails_segments(
    size: int, estimators: Sequence["NicEstimator"]
) -> List[int]:
    """One flow's segment list under the balanced all-to-all's floor."""
    return pipeline_segments(
        size,
        estimators,
        max_segments=BALANCE_MAX_SEGMENTS,
        min_bytes=rails_segment_floor(estimators) if estimators else None,
    )


def balanced_schedule(
    rank: int,
    matrix: Sequence[Sequence[int]],
    estimators: Sequence["NicEstimator"],
) -> List[Tuple[int, int, int]]:
    """The RailS-style send schedule for one source rank.

    Returns ``(dst, segment_index, segment_bytes)`` triples: every flow
    in this rank's matrix row cut into rendezvous-sized segments
    (:func:`rails_segments`), emitted in cycles that visit each pending
    destination once — ordered largest-remaining-first (ties broken by
    rank-shifted index, so sources stagger).  Elephant flows start
    immediately *and* interleave with mice, and each hot destination
    column is fed continuously from all sources instead of in
    source-synchronized bursts.  Deterministic, and computed identically
    at every rank (the traffic matrix is global, as in RailS'
    traffic-engineering setting).
    """
    n = len(matrix)
    queues: Dict[int, deque] = {}
    remaining: Dict[int, int] = {}
    for d in range(1, n):
        dst = (rank + d) % n
        size = matrix[rank][dst]
        if size > 0:
            queues[dst] = deque(enumerate(rails_segments(size, estimators)))
            remaining[dst] = size
    order: List[Tuple[int, int, int]] = []
    while queues:
        cycle = sorted(
            queues, key=lambda dst: (-remaining[dst], (dst - rank) % n)
        )
        for dst in cycle:
            q = queues[dst]
            t, seg = q.popleft()
            order.append((dst, t, seg))
            remaining[dst] -= seg
            if not q:
                del queues[dst]
                del remaining[dst]
    return order


def alltoallv_rails(
    comm: "Communicator",
    matrix: Sequence[Sequence[int]],
    tag: int,
    estimators: Sequence["NicEstimator"],
) -> Iterator:
    """RailS-style load-balanced irregular all-to-all.

    All segments are posted up front in :func:`balanced_schedule` order
    — the source NIC queues preserve it — so elephants drain from the
    first instant, mice slip between their segments instead of waiting
    behind them (or vice versa, whichever order the naive post would
    have imposed), and every segment is big enough to hetero-split
    across all rails.
    """
    n = comm.size
    r = comm.rank
    name = comm.peer_name
    handles = []
    for src in range(n):
        if src == r or matrix[src][r] <= 0:
            continue
        segs = rails_segments(matrix[src][r], estimators)
        handles.extend(
            comm.session.irecv(source=name(src), tag=tag + t)
            for t in range(len(segs))
        )
    sends = [
        comm.session.isend(name(dst), seg, tag=tag + t)
        for dst, t, seg in balanced_schedule(r, matrix, estimators)
    ]
    for msg in sends:
        yield from comm.session.wait(msg)
    for handle in handles:
        yield from comm.session.wait(handle)


def _replan_order(
    pending: Sequence[Tuple[int, int, int]],
    rank: int,
    n: int,
    price: Optional[Callable[[int], float]] = None,
) -> "deque":
    """Re-cut a remaining send schedule largest-remaining-first.

    Takes the not-yet-sent ``(dst, segment_index, segment_bytes)``
    triples and rebuilds the cycle order of :func:`balanced_schedule`
    from what is *actually* left — the destinations that lost the most
    to the fault lead every cycle.  ``price`` (the selector's per-hop
    cost, when sampled) re-prices the remaining work against the
    degraded fabric; without it raw bytes stand in.  Per-destination
    segment order is preserved, so segment indices — and therefore tags
    — still match the receives posted up front: a re-plan reorders
    hops, it never re-sends or re-sizes them.
    """
    queues: Dict[int, deque] = {}
    remaining: Dict[int, int] = {}
    for dst, t, seg in pending:
        queues.setdefault(dst, deque()).append((t, seg))
        remaining[dst] = remaining.get(dst, 0) + seg
    weigh = price if price is not None else float
    order: deque = deque()
    while queues:
        cycle = sorted(
            queues,
            key=lambda dst: (-weigh(remaining[dst]), (dst - rank) % n),
        )
        for dst in cycle:
            q = queues[dst]
            t, seg = q.popleft()
            order.append((dst, t, seg))
            remaining[dst] -= seg
            if not q:
                del queues[dst]
                del remaining[dst]
    return order


def alltoallv_rails_replan(
    comm: "Communicator",
    matrix: Sequence[Sequence[int]],
    tag: int,
    estimators: Sequence["NicEstimator"],
    window: int = REPLAN_WINDOW,
    price: Optional[Callable[[int], float]] = None,
) -> Iterator:
    """Balanced all-to-all with mid-collective re-planning.

    Sends ride the same segmentation and initial
    :func:`balanced_schedule` order as ``rails``, but are paced in
    windows of ``window`` instead of posted all at once.  After each
    window drains, the checkpoint look reads the fault signals — engine
    retries, degraded sends, fault-injector firings.  Any movement while
    hops remain pending triggers a re-plan: the remaining schedule is
    re-cut largest-remaining-first (:func:`_replan_order`, re-priced by
    the selector when sampled), the invariant monitor audits byte
    conservation across the cut, and the flight recorder dumps the
    decision.  Completed hops are never re-sent — tags bind each segment
    to the receive posted for it up front, so exactly-once holds through
    any number of re-plans.
    """
    n = comm.size
    r = comm.rank
    name = comm.peer_name
    handles = []
    for src in range(n):
        if src == r or matrix[src][r] <= 0:
            continue
        segs = rails_segments(matrix[src][r], estimators)
        handles.extend(
            comm.session.irecv(source=name(src), tag=tag + t)
            for t in range(len(segs))
        )
    pending: deque = deque(balanced_schedule(r, matrix, estimators))
    planned = sum(seg for _, _, seg in pending)
    accounted = 0
    cluster = comm.world.cluster
    sim = comm.session.sim
    engine = comm.session.engine
    injector = getattr(cluster, "fault_injector", None)
    inv = cluster.invariants
    obs = cluster.obs

    def signals() -> Tuple[int, int, int]:
        return (
            engine.retries_issued,
            engine.messages_degraded,
            injector.faults_fired if injector is not None else 0,
        )

    baseline = signals()
    replans = 0
    while pending:
        batch = [
            pending.popleft()
            for _ in range(min(max(1, window), len(pending)))
        ]
        msgs = [
            comm.session.isend(name(dst), seg, tag=tag + t)
            for dst, t, seg in batch
        ]
        for msg in msgs:
            yield from comm.session.wait(msg)
        # A degraded send still consumed its planned hop: the engine
        # exhausted the retry budget and the bytes are accounted to the
        # schedule either way (the receive side parks, by design).
        accounted += sum(seg for _, _, seg in batch)
        current = signals()
        if pending and current != baseline:
            baseline = current
            replans += 1
            left = sum(seg for _, _, seg in pending)
            if inv is not None and inv.on:
                inv.on_replan(r, tag, planned, accounted, left, sim.now)
            if obs.on:
                obs.metrics.counter("collective.replans").inc()
                obs.flight.record(
                    "collective-replan",
                    sim.now,
                    comm.session.node,
                    {
                        "rank": r,
                        "tag": tag,
                        "replan": replans,
                        "accounted_bytes": accounted,
                        "pending_bytes": left,
                        "pending_hops": len(pending),
                    },
                )
                obs.flight.trigger(
                    "collective-replan",
                    sim.now,
                    {"rank": r, "tag": tag, "replan": replans},
                )
            pending = _replan_order(pending, r, n, price)
    if inv is not None and inv.on:
        inv.on_collective_complete(r, tag, planned, accounted, sim.now)
    for handle in handles:
        yield from comm.session.wait(handle)


def uniform_matrix(n: int, nbytes: int) -> List[List[int]]:
    """The regular all-to-all as a traffic matrix (zero diagonal)."""
    return [
        [0 if i == j else nbytes for j in range(n)] for i in range(n)
    ]


def moe_matrix(
    n: int,
    base: int,
    hot_ranks: int = 2,
    skew: int = 8,
    hot: Optional[Sequence[int]] = None,
) -> List[List[int]]:
    """An MoE-shaped skewed traffic matrix: every source sends ``base``
    bytes to everyone, but ``hot_ranks`` destinations (the popular
    experts) receive ``skew``× that — the imbalance RailS spreads across
    rails.

    ``hot`` picks the hot destinations explicitly; by default they are
    spread evenly across the rank space — popular experts land on
    arbitrary ranks in practice, not conveniently at the front of every
    source's naive destination order.
    """
    if n < 2:
        raise ConfigurationError(f"matrix needs >= 2 ranks, got {n}")
    if hot is None:
        if not 1 <= hot_ranks < n:
            raise ConfigurationError(
                f"hot_ranks {hot_ranks} must be in 1..{n - 1}"
            )
        stride = n // hot_ranks
        hot = [i * stride + stride // 2 for i in range(hot_ranks)]
    hot_set = set(int(h) for h in hot)
    bad = [h for h in hot_set if not 0 <= h < n]
    if bad:
        raise ConfigurationError(f"hot rank(s) {sorted(bad)} outside 0..{n - 1}")
    return [
        [
            0 if i == j else (base * skew if j in hot_set else base)
            for j in range(n)
        ]
        for i in range(n)
    ]
