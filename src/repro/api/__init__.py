"""User-facing API: build clusters, open sessions, exchange messages.

The mpi4py-flavoured entry point::

    from repro.api import ClusterBuilder

    cluster = ClusterBuilder.paper_testbed(strategy="hetero_split").build()
    a, b = cluster.session("node0"), cluster.session("node1")

    recv = b.irecv(source="node0")
    msg = a.isend("node1", size="4M")
    cluster.run()
    print(msg.latency, "us one-way")

Fault injection rides the same front door::

    from repro.api import ClusterBuilder, FaultSchedule

    schedule = FaultSchedule(seed=7).nic_down(
        "node0.myri10g0", at=150.0, duration=2000.0
    )
    cluster = (
        ClusterBuilder.paper_testbed()
        .faults(schedule)
        .resilience(timeout="200us")
        .build()
    )
"""

from repro.api.cluster import Cluster, ClusterBuilder, RunResult
from repro.api.collectives import AlgorithmSelector, VALID_ALGORITHMS
from repro.api.session import Session
from repro.api.config import builder_from_config, load_cluster
from repro.api.mpi import Communicator, MpiWorld
from repro.faults import FaultSchedule
from repro.hardware.topology import Fabric, FabricRail
from repro.obs import Observability

__all__ = [
    "Cluster",
    "ClusterBuilder",
    "RunResult",
    "Session",
    "builder_from_config",
    "load_cluster",
    "Communicator",
    "MpiWorld",
    "Fabric",
    "FabricRail",
    "AlgorithmSelector",
    "VALID_ALGORITHMS",
    "FaultSchedule",
    "Observability",
]
