"""User-facing API: build clusters, open sessions, exchange messages.

The mpi4py-flavoured entry point::

    from repro.api import ClusterBuilder

    cluster = ClusterBuilder.paper_testbed(strategy="hetero_split").build()
    a, b = cluster.session("node0"), cluster.session("node1")

    recv = b.irecv(source="node0")
    msg = a.isend("node1", size=4 * 1024 * 1024)
    cluster.run()
    print(msg.latency, "us one-way")
"""

from repro.api.cluster import Cluster, ClusterBuilder
from repro.api.session import Session
from repro.api.config import builder_from_config, load_cluster
from repro.api.mpi import Communicator, MpiWorld

__all__ = [
    "Cluster",
    "ClusterBuilder",
    "Session",
    "builder_from_config",
    "load_cluster",
    "Communicator",
    "MpiWorld",
]
