"""Per-node session: the application-facing handle on an engine.

Method names follow mpi4py's lower-case convention for object-ish sends:
``isend``/``irecv`` return handles; ``wait`` is a process-style helper
for generator coroutines running inside the simulator.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.engine import NmadEngine
from repro.core.packets import Message, RecvHandle


class Session:
    """Application endpoint bound to one node's engine."""

    def __init__(self, engine: NmadEngine) -> None:
        self.engine = engine
        self.sim = engine.sim

    def __repr__(self) -> str:
        return f"<Session on {self.node}>"

    @property
    def node(self) -> str:
        return self.engine.machine.name

    # ------------------------------------------------------------------ #
    # non-blocking API (returns immediately; completion via .done events)
    # ------------------------------------------------------------------ #

    def isend(self, dest: str, size: "int | str", tag: int = 0) -> Message:
        """Enqueue a send of ``size`` bytes (accepts ``"4K"`` notation).

        Size parsing happens once, in :meth:`NmadEngine.isend` — every
        entry point (engine, session, communicator) shares that choke
        point.
        """
        return self.engine.isend(dest, size, tag=tag)

    def irecv(
        self, source: Optional[str] = None, tag: Optional[int] = None
    ) -> RecvHandle:
        """Post a receive matching ``source``/``tag`` (None = wildcard)."""
        return self.engine.post_recv(source=source, tag=tag)

    def cancel(self, handle: RecvHandle) -> bool:
        """Withdraw an unmatched receive (False if it already matched)."""
        return self.engine.cancel_recv(handle)

    # ------------------------------------------------------------------ #
    # process-style helper
    # ------------------------------------------------------------------ #

    def wait(self, handle: Union[Message, RecvHandle]):
        """``yield from session.wait(h)`` inside a simulation process.

        Returns the completed :class:`Message`.
        """
        assert handle.done is not None
        result = yield handle.done
        return result
