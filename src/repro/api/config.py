"""Declarative cluster construction from dicts / JSON files.

Downstream users describe a testbed once and rebuild it everywhere::

    {
      "strategy": "hetero_split",
      "nodes": [
        {"name": "node0", "sockets": 2, "cores_per_socket": 2},
        {"name": "node1", "sockets": 2, "cores_per_socket": 2}
      ],
      "rails": [
        {"driver": "myri10g",  "between": ["node0", "node1"]},
        {"driver": "quadrics", "between": ["node0", "node1"],
         "overrides": {"wire_latency": 1.5}}
      ],
      "options": {"multicore_rx": true, "app_core": 0},
      "per_node_strategy": {"node1": "greedy"},
      "sampling": {"profile_file": "profiles.json"},
      "version": 1,
      "faults": {"seed": 7, "events": [
        {"time": 150.0, "nic": "node0.myri10g0", "action": "down"},
        {"time": 650.0, "nic": "node0.myri10g0", "action": "up"}
      ]},
      "resilience": {"timeout": "200us", "max_retries": 8},
      "observability": {"trace": true, "metrics": true, "accuracy": true},
      "invariants": {"strict_checksums": true, "trail_depth": 64},
      "calibration": {"blend": 0.5, "drift_threshold": 0.15}
    }

Instead of explicit ``nodes`` + ``rails``, a ``fabric`` section
describes an N-node testbed declaratively
(:meth:`repro.hardware.topology.Fabric.from_dict`) — the documented
default being the paper's two-node back-to-back testbed::

    {
      "fabric": {
        "nodes": 2,
        "rails": [{"driver": "myri10g", "kind": "wire"},
                  {"driver": "quadrics", "kind": "wire"}]
      },
      "collectives": {"alltoall": "ring", "bcast": "auto"}
    }

``kind`` may also be ``"switch"`` (one flat contended switch) or
``"fat_tree"`` (two-stage, with ``pod_size``/``spines``).
``collectives`` sets default algorithms for MPI worlds built over the
cluster (:meth:`ClusterBuilder.collectives`; unknown algorithm names
raise with the valid choices listed).

``version`` is optional (defaults to 1); unknown top-level keys and
unknown versions raise :class:`ConfigurationError` so typos never pass
silently.  ``faults`` takes a schedule in its
:meth:`~repro.faults.FaultSchedule.to_dict` form; ``resilience`` maps to
:meth:`ClusterBuilder.resilience`.

``load_cluster(path_or_dict)`` returns a built :class:`Cluster`;
``builder_from_config`` stops one step earlier for callers that want to
tweak the builder programmatically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.api.cluster import Cluster, ClusterBuilder
from repro.core.sampling import ProfileStore
from repro.faults import FaultSchedule
from repro.hardware.topology import CpuTopology, Fabric
from repro.util.errors import ConfigurationError

ConfigSource = Union[str, Path, Dict[str, Any]]

_TOP_LEVEL_KEYS = {
    "version",
    "strategy",
    "nodes",
    "rails",
    "fabric",
    "collectives",
    "options",
    "per_node_strategy",
    "sampling",
    "faults",
    "resilience",
    "observability",
    "invariants",
    "calibration",
}

#: config schema versions this loader understands
_SUPPORTED_VERSIONS = {1}

_RESILIENCE_KEYS = {
    "timeout",
    "max_retries",
    "backoff_base",
    "backoff_factor",
    "backoff_max",
}

_OBSERVABILITY_KEYS = {
    "trace",
    "metrics",
    "accuracy",
    "trace_limit",
    "flight",
    "flight_capacity",
    "collectives",
}

_INVARIANTS_KEYS = {"strict_checksums", "trail_depth"}

_CALIBRATION_KEYS = {
    "blend",
    "auto_resample",
    "clamp_frac",
    "resample_repetitions",
    "alpha",
    "drift_threshold",
    "clear_threshold",
    "min_samples",
    "cooldown",
    "confidence_scale",
    "ladder_knobs",
}


def _load_dict(source: ConfigSource) -> Dict[str, Any]:
    if isinstance(source, dict):
        return source
    path = Path(source)
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read cluster config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc


def builder_from_config(source: ConfigSource) -> ClusterBuilder:
    """Build a :class:`ClusterBuilder` from a config dict or JSON file."""
    config = _load_dict(source)
    unknown = set(config) - _TOP_LEVEL_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown config keys {sorted(unknown)}; known: {sorted(_TOP_LEVEL_KEYS)}"
        )
    version = config.get("version", 1)
    if version not in _SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported config version {version!r}; "
            f"supported: {sorted(_SUPPORTED_VERSIONS)}"
        )
    builder = ClusterBuilder(strategy=config.get("strategy", "hetero_split"))

    fabric = config.get("fabric")
    if fabric is not None:
        if config.get("nodes") or config.get("rails"):
            raise ConfigurationError(
                "'fabric' replaces 'nodes' + 'rails'; give one or the other"
            )
        builder.fabric(Fabric.from_dict(fabric))
    else:
        nodes = config.get("nodes")
        if not nodes:
            raise ConfigurationError(
                "config needs a non-empty 'nodes' list (or a 'fabric')"
            )
        for node in nodes:
            if "name" not in node:
                raise ConfigurationError(f"node entry without a name: {node}")
            topology = None
            if "sockets" in node or "cores_per_socket" in node:
                topology = CpuTopology(
                    sockets=int(node.get("sockets", 2)),
                    cores_per_socket=int(node.get("cores_per_socket", 2)),
                    signal_cost_us=float(node.get("signal_cost_us", 3.0)),
                    preempt_cost_us=float(node.get("preempt_cost_us", 6.0)),
                )
            builder.add_node(
                node["name"],
                topology=topology,
                memcpy_rate=float(node.get("memcpy_rate", 3000.0)),
            )

        rails = config.get("rails")
        if not rails:
            raise ConfigurationError(
                "config needs a non-empty 'rails' list (or a 'fabric')"
            )
        for rail in rails:
            try:
                driver = rail["driver"]
                node_a, node_b = rail["between"]
            except (KeyError, ValueError) as exc:
                raise ConfigurationError(
                    f"rail entry needs 'driver' and a 2-node 'between': {rail}"
                ) from exc
            builder.add_rail(driver, node_a, node_b, **rail.get("overrides", {}))

    coll_overrides = config.get("collectives")
    if coll_overrides is not None:
        if not isinstance(coll_overrides, dict):
            raise ConfigurationError(
                f"'collectives' must map collective -> algorithm; "
                f"got {coll_overrides!r}"
            )
        builder.collectives(coll_overrides)

    for node_name, strategy in config.get("per_node_strategy", {}).items():
        builder.strategy_for(node_name, strategy)

    options = config.get("options", {})
    if options.get("multicore_rx"):
        builder.multicore_rx(True)
    if "app_core" in options:
        builder.app_core(int(options["app_core"]))

    sampling = config.get("sampling", True)
    if sampling is False:
        builder.sampling(enabled=False)
    elif isinstance(sampling, dict) and "profile_file" in sampling:
        builder.sampling(profiles=ProfileStore.load(sampling["profile_file"]))
    elif sampling is not True:
        raise ConfigurationError(
            f"'sampling' must be true, false, or {{'profile_file': ...}}; "
            f"got {sampling!r}"
        )

    faults = config.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            raise ConfigurationError(
                f"'faults' must be a schedule dict "
                f"(FaultSchedule.to_dict form); got {faults!r}"
            )
        builder.faults(FaultSchedule.from_dict(faults))

    resilience = config.get("resilience")
    if resilience is not None:
        if not isinstance(resilience, dict):
            raise ConfigurationError(
                f"'resilience' must be a dict; got {resilience!r}"
            )
        bad = set(resilience) - _RESILIENCE_KEYS
        if bad:
            raise ConfigurationError(
                f"unknown resilience keys {sorted(bad)}; "
                f"known: {sorted(_RESILIENCE_KEYS)}"
            )
        builder.resilience(**resilience)

    observability = config.get("observability")
    if observability is not None:
        if observability is True:
            builder.observability()
        elif observability is False:
            builder.observability(enabled=False)
        elif isinstance(observability, dict):
            bad = set(observability) - _OBSERVABILITY_KEYS
            if bad:
                raise ConfigurationError(
                    f"unknown observability keys {sorted(bad)}; "
                    f"known: {sorted(_OBSERVABILITY_KEYS)}"
                )
            builder.observability(**observability)
        else:
            raise ConfigurationError(
                f"'observability' must be true, false, or a dict of "
                f"{sorted(_OBSERVABILITY_KEYS)}; got {observability!r}"
            )

    invariants = config.get("invariants")
    if invariants is not None:
        if invariants is True:
            builder.invariants()
        elif invariants is False:
            builder.invariants(enabled=False)
        elif isinstance(invariants, dict):
            bad = set(invariants) - _INVARIANTS_KEYS
            if bad:
                raise ConfigurationError(
                    f"unknown invariants keys {sorted(bad)}; "
                    f"known: {sorted(_INVARIANTS_KEYS)}"
                )
            builder.invariants(**invariants)
        else:
            raise ConfigurationError(
                f"'invariants' must be true, false, or a dict of "
                f"{sorted(_INVARIANTS_KEYS)}; got {invariants!r}"
            )

    calibration = config.get("calibration")
    if calibration is not None:
        if calibration is True:
            builder.calibration()
        elif calibration is False:
            builder.calibration(enabled=False)
        elif isinstance(calibration, dict):
            bad = set(calibration) - _CALIBRATION_KEYS
            if bad:
                raise ConfigurationError(
                    f"unknown calibration keys {sorted(bad)}; "
                    f"known: {sorted(_CALIBRATION_KEYS)}"
                )
            builder.calibration(**calibration)
        else:
            raise ConfigurationError(
                f"'calibration' must be true, false, or a dict of "
                f"{sorted(_CALIBRATION_KEYS)}; got {calibration!r}"
            )
    return builder


def load_cluster(source: ConfigSource) -> Cluster:
    """One-call variant: config → built cluster."""
    return builder_from_config(source).build()
