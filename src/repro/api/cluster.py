"""Cluster assembly: nodes, rails, sampling, engines — one builder call.

:class:`ClusterBuilder` wires the whole stack in the right order:
machines → NICs/wires → sampling (once per technology) → engines with the
chosen strategy.  :meth:`ClusterBuilder.paper_testbed` reproduces the
paper's evaluation platform: two dual dual-core Opteron nodes joined by a
Myri-10G rail and a Quadrics rail (§IV).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.engine import NmadEngine
from repro.core.invariants import InvariantMonitor, InvariantViolation
from repro.core.sampling import NetworkSampler, ProfileStore  # noqa: F401 (re-export)
from repro.core.strategies import Strategy, make_strategy
from repro.faults import FaultInjector, FaultSchedule, install_faults
from repro.hardware.machine import Machine
from repro.hardware.topology import CpuTopology, Fabric
from repro.networks.drivers.base import Driver
from repro.networks.drivers import make_driver
from repro.networks.nic import Nic
from repro.networks.wire import Wire
from repro.obs import NULL_OBS, Observability
from repro.simtime import Simulator
from repro.util.errors import ConfigurationError

StrategySpec = Union[str, Strategy, Callable[[], Strategy]]


@dataclass(frozen=True)
class RunResult:
    """What one :meth:`Cluster.run` call accomplished.

    Floats transparently to the final clock value, so code written
    against the old ``run() -> float`` contract keeps working via
    ``float(result)`` / format strings.
    """

    elapsed: float          #: simulated clock (µs) when the run stopped
    events_processed: int   #: events executed during this call
    faults_fired: int       #: fault actions injected so far (cumulative)

    def __float__(self) -> float:
        return self.elapsed

    def __repr__(self) -> str:
        return (
            f"<RunResult t={self.elapsed:.3f}us events={self.events_processed}"
            f" faults={self.faults_fired}>"
        )


def _resolve_strategy(spec: StrategySpec) -> Strategy:
    if isinstance(spec, Strategy):
        # A strategy instance may be given once but serve several nodes;
        # every engine needs its own (strategies hold per-engine state),
        # so hand out detached shallow copies.
        clone = copy.copy(spec)
        clone.engine = None
        return clone
    if isinstance(spec, str):
        return make_strategy(spec)
    return spec()


class Cluster:
    """A built cluster: simulator + machines + one engine per node."""

    def __init__(
        self,
        sim: Simulator,
        machines: Dict[str, Machine],
        engines: Dict[str, NmadEngine],
        profiles: Optional[ProfileStore],
    ) -> None:
        self.sim = sim
        self.machines = machines
        self.engines = engines
        self.profiles = profiles
        #: armed by :func:`repro.faults.install_faults` (None = no faults)
        self.fault_injector: Optional[FaultInjector] = None
        #: cluster-wide observability hub (NULL_OBS = disabled, the default)
        self.obs: Observability = NULL_OBS
        #: cluster-wide invariant monitor (None = checking off, the default)
        self.invariants: Optional[InvariantMonitor] = None
        #: closed-loop calibration controller (None = drift defense off,
        #: the default; see docs/calibration.md)
        self.calibration: Optional[Any] = None
        #: the declarative description this cluster was built from, when
        #: it came through :meth:`ClusterBuilder.fabric` (None otherwise)
        self.fabric: Optional[Fabric] = None
        #: default collective-algorithm overrides for MPI worlds wrapping
        #: this cluster (set via :meth:`ClusterBuilder.collectives`)
        self.collectives: Dict[str, str] = {}

    def __repr__(self) -> str:
        return f"<Cluster nodes={sorted(self.machines)}>"

    def engine(self, node: str) -> NmadEngine:
        try:
            return self.engines[node]
        except KeyError:
            raise ConfigurationError(
                f"no node {node!r}; have {sorted(self.engines)}"
            ) from None

    def session(self, node: str) -> "Session":
        from repro.api.session import Session

        return Session(self.engine(node))

    def sessions(self, *nodes: str) -> Tuple["Session", ...]:
        """Sessions for the named nodes — or every node, sorted, when
        called with no arguments: ``s0, s1 = cluster.sessions()``."""
        names = nodes if nodes else tuple(sorted(self.engines))
        return tuple(self.session(name) for name in names)

    def run(self, until: Optional[float] = None) -> RunResult:
        """Advance the simulation (drain, or up to ``until`` µs).

        Returns a :class:`RunResult`; ``float(result)`` is the final
        clock value, matching the historical return.
        """
        before = self.sim.events_processed
        elapsed = self.sim.run(until=until)
        return RunResult(
            elapsed=elapsed,
            events_processed=self.sim.events_processed - before,
            faults_fired=(
                self.fault_injector.faults_fired if self.fault_injector else 0
            ),
        )

    def resample(
        self,
        sampler: Optional["NetworkSampler"] = None,
        rail: Optional[str] = None,
        blend: Optional[float] = None,
        repetitions: int = 1,
    ) -> ProfileStore:
        """Re-run the §III-C sampling pass and swap fresh estimators into
        every engine.

        The paper samples once at launch; ablation A8 shows how much a
        silently degraded rail costs under stale profiles.  Two modes:

        * ``resample()`` — re-measure **every** technology on a pristine
          private testbed and replace all estimators (the historical
          behaviour; use after changing driver profile overrides).
        * ``resample(rail=...)`` — the calibration drift loop's online
          re-sample: measure **one** suspect rail with an
          :class:`~repro.core.sampling.OnlineSampler` that mirrors the
          live NIC's silent degradation onto the probes, then blend the
          fresh curve into the existing estimator (``blend`` weight,
          default 0.5; ``1.0`` replaces outright).  ``rail`` is either a
          qualified NIC name (``"node0.myri10g0"``) or a technology name
          (``"myri10g"`` — the slowest-looking NIC of that technology is
          used as the template).  The ping-pong runs on a *private*
          simulator, so in-flight traffic is quiesced, not disturbed.

        Either way the engines' predictors are rebuilt, which also
        invalidates plan caches (they are keyed per predictor instance).
        """
        from repro.core.prediction import CompletionPredictor
        from repro.core.sampling import OnlineSampler

        if rail is None:
            drivers = {
                nic.driver.technology: nic.driver
                for machine in self.machines.values()
                for nic in machine.nics
            }
            fresh = ProfileStore.sample_drivers(drivers.values(), sampler=sampler)
            self.profiles = fresh
        else:
            nic = self._resolve_rail(rail)
            if self.profiles is None:
                raise ConfigurationError(
                    "resample(rail=...) needs launch-time profiles to blend "
                    "into; build with sampling enabled"
                )
            if sampler is None:
                sampler = OnlineSampler(nic, repetitions=repetitions)
            tech = nic.driver.technology
            fresh_est = sampler.sample(nic.driver).to_estimator()
            weight = 0.5 if blend is None else blend
            old = self.profiles.estimators.get(tech)
            # Copy-on-write: the store may be shared (e.g. the cached
            # default_profiles), so never mutate it in place.
            store = ProfileStore(self.profiles.estimators)
            store.estimators[tech] = (
                fresh_est if old is None or weight >= 1.0
                else old.blend(fresh_est, weight)
            )
            self.profiles = fresh = store
        for engine in self.engines.values():
            engine.predictor = CompletionPredictor(fresh.estimators)
            engine.predictor.bind_obs(engine.obs, engine.machine.name)
        return fresh

    def _resolve_rail(self, rail: str) -> Nic:
        """Map ``rail`` to a live NIC: exact qualified name first, else
        the worst-degraded NIC of that technology (ties by name)."""
        nics = [
            nic
            for machine in self.machines.values()
            for nic in machine.nics
        ]
        for nic in nics:
            if nic.qualified_name == rail:
                return nic
        candidates = [n for n in nics if n.driver.technology == rail]
        if not candidates:
            have = sorted({n.qualified_name for n in nics})
            raise ConfigurationError(
                f"no rail {rail!r}; have {have} "
                f"(or a technology name from {sorted({n.driver.technology for n in nics})})"
            )
        return min(
            candidates, key=lambda n: (n.silent_bw_factor, n.qualified_name)
        )

    # ------------------------------------------------------------------ #
    # observability front-door (see docs/observability.md)
    # ------------------------------------------------------------------ #

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Name-sorted counters/gauges/histograms at the current instant.

        Gauges (utilization, queue depths, predictor cache rates) are
        refreshed from the live cluster before snapshotting; counters and
        histograms accumulate as the simulation runs.
        """
        self.obs.sample_cluster(self)
        return self.obs.metrics.snapshot()

    def accuracy_snapshot(self) -> Dict[str, Any]:
        """Predicted-vs-actual transfer-time statistics (see
        :class:`repro.obs.PredictionAccuracy`)."""
        return self.obs.accuracy.snapshot()

    def accuracy_report(self) -> str:
        """Human-readable per-rail/per-size prediction-error table."""
        return self.obs.accuracy.report()

    def calibration_snapshot(self) -> Dict[str, Any]:
        """JSON-able drift-defense state (observations, drift events,
        resamples, per-rail confidence, ladder transitions).  Raises when
        calibration was not enabled at build time."""
        if self.calibration is None:
            raise ConfigurationError(
                "calibration is off; build with ClusterBuilder.calibration()"
            )
        return self.calibration.snapshot()

    def calibration_report(self) -> str:
        """Human-readable drift-defense summary (see docs/calibration.md)."""
        if self.calibration is None:
            raise ConfigurationError(
                "calibration is off; build with ClusterBuilder.calibration()"
            )
        return self.calibration.report()

    def chrome_trace(self) -> Dict[str, Any]:
        """The run so far as a Chrome ``trace_event`` JSON object."""
        from repro.obs.chrome_export import chrome_trace

        self.obs.collectives.flush_to_tracer(self.obs.tracer)
        return chrome_trace(self.obs.tracer)

    def export_chrome_trace(self, target) -> int:
        """Write the Chrome trace to ``target`` (path or file object);
        returns the number of events written.  Load the file in
        ``chrome://tracing`` or https://ui.perfetto.dev."""
        from repro.obs.chrome_export import export_chrome_trace

        self.obs.collectives.flush_to_tracer(self.obs.tracer)
        return export_chrome_trace(self.obs.tracer, target)

    # ------------------------------------------------------------------ #
    # drain accounting (see docs/chaos.md)
    # ------------------------------------------------------------------ #

    def drain_report(self) -> List[str]:
        """Diagnoses for every send still non-terminal, across all nodes.

        Empty after a healthy drain; each entry names a message that
        neither completed nor degraded — a silent hang made visible.
        """
        out: List[str] = []
        for name in sorted(self.engines):
            out.extend(self.engines[name].stuck_messages())
        return out

    def check_drain(self) -> None:
        """Audit the drained cluster: every send terminal, NICs quiet.

        Routes through the invariant monitor when one is attached (the
        full ``drain-no-stuck`` / ``nic-tx-sanity`` audit, with scenario
        context in the violation); otherwise performs the stuck-message
        check directly.  Raises :class:`InvariantViolation` on failure.
        """
        try:
            if self.invariants is not None:
                self.invariants.check_drain(self)
                return
            stuck = self.drain_report()
            if stuck:
                raise InvariantViolation(
                    "drain-no-stuck",
                    f"{len(stuck)} message(s) non-terminal at drain: "
                    + "; ".join(stuck[:6])
                    + ("; ..." if len(stuck) > 6 else ""),
                    self.sim.now,
                )
        except InvariantViolation as exc:
            # Post-mortem before propagating: the flight recorder's ring
            # holds the events leading up to the violation.
            self.obs.flight.trigger(
                "invariant-violation",
                self.sim.now,
                detail={"invariant": exc.invariant, "message": exc.detail},
            )
            raise

    def drain_stuck(self) -> List[Any]:
        """Degrade every still-pending send on every node (see
        :meth:`NmadEngine.drain_stuck`); returns the drained messages."""
        drained: List[Any] = []
        for name in sorted(self.engines):
            drained.extend(self.engines[name].drain_stuck())
        if drained:
            self.obs.flight.trigger(
                "drain-stuck",
                self.sim.now,
                detail={
                    "drained": len(drained),
                    "msg_ids": [m.msg_id for m in drained[:16]],
                },
            )
        return drained


class ClusterBuilder:
    """Fluent builder for simulated multirail clusters."""

    def __init__(self, strategy: StrategySpec = "hetero_split") -> None:
        self.sim = Simulator()
        self._strategy = strategy
        self._per_node_strategy: Dict[str, StrategySpec] = {}
        self._machines: Dict[str, Machine] = {}
        self._rails: List[Tuple[str, str, Driver]] = []
        #: (nodes, driver, latency, stage spec) — spec {} = flat switch,
        #: {"pod_size": ..., "spines": ...} = two-stage fat tree
        self._switches: List[
            Tuple[Tuple[str, ...], Driver, float, Dict[str, Any]]
        ] = []
        self._fabric: Optional[Fabric] = None
        self._collectives: Dict[str, str] = {}
        self._sample = True
        self._sampler: Optional[NetworkSampler] = None
        self._profiles: Optional[ProfileStore] = None
        self._app_core_id = 0
        self._multicore_rx = False
        self._faults: Optional[FaultSchedule] = None
        self._resilience: Dict[str, Any] = {}
        self._observability: Optional[Dict[str, Any]] = None
        self._invariants: Optional[Dict[str, Any]] = None
        self._calibration: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add_node(
        self,
        name: str,
        topology: Optional[CpuTopology] = None,
        memcpy_rate: float = 3000.0,
    ) -> "ClusterBuilder":
        if name in self._machines:
            raise ConfigurationError(f"duplicate node {name!r}")
        self._machines[name] = Machine(
            self.sim, name, topology=topology, memcpy_rate=memcpy_rate
        )
        return self

    def add_rail(
        self,
        driver: Union[str, Driver],
        node_a: str,
        node_b: str,
        **driver_overrides,
    ) -> "ClusterBuilder":
        """Join two nodes with one rail of the given technology."""
        if isinstance(driver, str):
            driver = make_driver(driver, **driver_overrides)
        elif driver_overrides:
            raise ConfigurationError(
                "driver overrides only apply to registry-name rails"
            )
        for node in (node_a, node_b):
            if node not in self._machines:
                raise ConfigurationError(f"unknown node {node!r}; add_node first")
        self._rails.append((node_a, node_b, driver))
        return self

    def add_switch(
        self,
        driver: Union[str, Driver],
        nodes: List[str],
        switch_latency: float = 0.3,
        **driver_overrides,
    ) -> "ClusterBuilder":
        """Join several nodes through one shared switch (one NIC each).

        Unlike :meth:`add_rail`'s dedicated point-to-point links, flows
        through a switch contend for the destination's port — the incast
        behaviour of real (e.g. T2K-style) fabrics.
        """
        if isinstance(driver, str):
            driver = make_driver(driver, **driver_overrides)
        elif driver_overrides:
            raise ConfigurationError(
                "driver overrides only apply to registry-name fabrics"
            )
        if len(set(nodes)) < 2:
            raise ConfigurationError("a switch needs at least two distinct nodes")
        for node in nodes:
            if node not in self._machines:
                raise ConfigurationError(f"unknown node {node!r}; add_node first")
        self._switches.append((tuple(nodes), driver, switch_latency, {}))
        return self

    def add_fat_tree(
        self,
        driver: Union[str, Driver],
        nodes: List[str],
        switch_latency: float = 0.3,
        pod_size: int = 4,
        spines: int = 2,
        adaptive: bool = True,
        **driver_overrides,
    ) -> "ClusterBuilder":
        """Join several nodes through a two-stage fat tree (one NIC each).

        Like :meth:`add_switch` plus the multi-stage effects:
        ``pod_size`` nodes share an edge pod (intra-pod traffic behaves
        exactly like a flat switch), and inter-pod packets serialize on
        one of ``spines`` shared uplinks chosen by a static flow hash —
        see :class:`repro.networks.switch.FatTreeSwitch`.  ``adaptive``
        re-routes flows off down/degraded spines (the default; identical
        to the static hash until a fabric fault fires).
        """
        if isinstance(driver, str):
            driver = make_driver(driver, **driver_overrides)
        elif driver_overrides:
            raise ConfigurationError(
                "driver overrides only apply to registry-name fabrics"
            )
        if len(set(nodes)) < 2:
            raise ConfigurationError("a fat tree needs at least two distinct nodes")
        for node in nodes:
            if node not in self._machines:
                raise ConfigurationError(f"unknown node {node!r}; add_node first")
        if pod_size < 1:
            raise ConfigurationError(f"pod_size must be >= 1, got {pod_size}")
        if spines < 1:
            raise ConfigurationError(f"spines must be >= 1, got {spines}")
        self._switches.append(
            (
                tuple(nodes),
                driver,
                switch_latency,
                {"pod_size": pod_size, "spines": spines, "adaptive": adaptive},
            )
        )
        return self

    def fabric(self, fabric: Union[Fabric, Dict[str, Any]]) -> "ClusterBuilder":
        """Materialize a :class:`~repro.hardware.topology.Fabric`.

        Adds every named node and wires each :class:`FabricRail` as a
        full wire mesh, one flat switch, or one fat tree — the
        declarative front-door over :meth:`add_node` / :meth:`add_rail` /
        :meth:`add_switch` / :meth:`add_fat_tree`.  The built
        :class:`Cluster` remembers the description as ``cluster.fabric``
        (``cli topology`` and :meth:`MpiWorld.from_cluster` read it).
        """
        if isinstance(fabric, dict):
            fabric = Fabric.from_dict(fabric)
        if not isinstance(fabric, Fabric):
            raise ConfigurationError(
                f"fabric() wants a Fabric or its dict form, got {fabric!r}"
            )
        for name in fabric.nodes:
            self.add_node(name)
        nodes = list(fabric.nodes)
        for rail in fabric.rails:
            if rail.kind == "wire":
                for i, node_a in enumerate(nodes):
                    for node_b in nodes[i + 1:]:
                        self.add_rail(
                            rail.technology, node_a, node_b, **rail.overrides
                        )
            elif rail.kind == "switch":
                self.add_switch(
                    rail.technology,
                    nodes,
                    switch_latency=rail.switch_latency,
                    **rail.overrides,
                )
            else:  # fat_tree (FabricRail validated the kind already)
                self.add_fat_tree(
                    rail.technology,
                    nodes,
                    switch_latency=rail.switch_latency,
                    pod_size=fabric.pod_size_of(rail),
                    spines=rail.spines,
                    adaptive=rail.adaptive,
                    **rail.overrides,
                )
        self._fabric = fabric
        return self

    def collectives(self, overrides: Dict[str, str]) -> "ClusterBuilder":
        """Default collective-algorithm choices for MPI worlds over this
        cluster (``{"alltoall": "ring", ...}``; validated now — unknown
        names raise with the valid choices listed)."""
        from repro.api.collectives import validate_overrides

        self._collectives = validate_overrides(overrides)
        return self

    def strategy_for(self, node: str, strategy: StrategySpec) -> "ClusterBuilder":
        """Override the strategy for one node (defaults apply elsewhere)."""
        self._per_node_strategy[node] = strategy
        return self

    def sampling(
        self,
        enabled: bool = True,
        sampler: Optional[NetworkSampler] = None,
        profiles: Optional[ProfileStore] = None,
    ) -> "ClusterBuilder":
        """Control the §III-C sampling pass.

        ``profiles`` short-circuits measurement with pre-recorded tables
        (the real system loads its sampling files at launch, too).
        """
        self._sample = enabled
        self._sampler = sampler
        self._profiles = profiles
        return self

    def app_core(self, core_id: int) -> "ClusterBuilder":
        self._app_core_id = core_id
        return self

    def multicore_rx(self, enabled: bool = True) -> "ClusterBuilder":
        """Let receive-side progression spill to idle cores (paper's
        future-work improvement; ablation A7 quantifies it)."""
        self._multicore_rx = enabled
        return self

    def faults(
        self, schedule: Union[FaultSchedule, Dict[str, Any], None]
    ) -> "ClusterBuilder":
        """Arm a fault schedule when the cluster is built.

        Accepts a :class:`~repro.faults.FaultSchedule`, its ``to_dict``
        form (the config-file representation), or ``None`` to clear a
        previously set schedule.
        """
        if schedule is None:
            self._faults = None
        elif isinstance(schedule, FaultSchedule):
            self._faults = schedule
        elif isinstance(schedule, dict):
            self._faults = FaultSchedule.from_dict(schedule)
        else:
            raise ConfigurationError(
                f"faults() wants a FaultSchedule or dict, got {schedule!r}"
            )
        return self

    def resilience(
        self,
        timeout: Union[float, str, None] = None,
        max_retries: int = 8,
        backoff_base: Union[float, str, None] = None,
        backoff_factor: float = 2.0,
        backoff_max: Union[float, str, None] = None,
    ) -> "ClusterBuilder":
        """Configure every engine's timeout/retry behaviour.

        ``timeout`` enables the per-message watchdog (``None`` keeps it
        off — the default, and the bit-identical healthy path).  Time
        values accept ``"200us"`` / ``"1.5ms"`` strings.  See
        :class:`~repro.core.engine.NmadEngine` for the full contract.
        """
        self._resilience = {
            "timeout": timeout,
            "max_retries": max_retries,
            "backoff_base": backoff_base,
            "backoff_factor": backoff_factor,
            "backoff_max": backoff_max,
        }
        return self

    def observability(
        self,
        enabled: bool = True,
        trace: bool = True,
        metrics: bool = True,
        accuracy: bool = True,
        trace_limit: Optional[int] = None,
        flight: bool = True,
        flight_capacity: Optional[int] = None,
        collectives: bool = True,
    ) -> "ClusterBuilder":
        """Attach a cluster-wide :class:`repro.obs.Observability` hub.

        Off by default — and the disabled path is bit-identical to a
        build without this call (all hooks are record-only and guarded).
        ``trace``/``metrics``/``accuracy``/``flight``/``collectives``
        toggle the telemetry planes individually; ``trace_limit`` bounds
        the trace event buffer (oldest runs keep, newest drop, counted
        deterministically); ``flight_capacity`` sizes the flight
        recorder's event ring (see :mod:`repro.obs.flight`).
        """
        if not enabled:
            self._observability = None
            return self
        spec: Dict[str, Any] = {
            "trace": trace,
            "metrics": metrics,
            "accuracy": accuracy,
            "flight": flight,
            "collectives": collectives,
        }
        if trace_limit is not None:
            if trace_limit < 1:
                raise ConfigurationError(
                    f"trace_limit must be positive, got {trace_limit}"
                )
            spec["trace_limit"] = trace_limit
        if flight_capacity is not None:
            if flight_capacity < 1:
                raise ConfigurationError(
                    f"flight_capacity must be positive, got {flight_capacity}"
                )
            spec["flight_capacity"] = flight_capacity
        self._observability = spec
        return self

    def invariants(
        self,
        enabled: bool = True,
        trail_depth: Optional[int] = None,
        strict_checksums: bool = True,
    ) -> "ClusterBuilder":
        """Attach a cluster-wide :class:`repro.core.invariants.InvariantMonitor`.

        Off by default — and, like :meth:`observability`, the disabled
        path is bit-identical to a build without this call: the monitor
        is purely passive (it reads state and raises, never schedules
        events), so enabling it moves no simulated timestamp either.
        ``trail_depth`` bounds the violation-report observation trail;
        ``strict_checksums`` toggles per-chunk wire-checksum verification.
        """
        if not enabled:
            self._invariants = None
            return self
        spec: Dict[str, Any] = {"strict_checksums": strict_checksums}
        if trail_depth is not None:
            if trail_depth < 1:
                raise ConfigurationError(
                    f"trail_depth must be positive, got {trail_depth}"
                )
            spec["trail_depth"] = trail_depth
        self._invariants = spec
        return self

    def calibration(self, enabled: bool = True, **knobs) -> "ClusterBuilder":
        """Attach the closed-loop drift defense (docs/calibration.md).

        Off by default — and, like :meth:`observability`, the disabled
        path is bit-identical to a build without this call.  *Unlike*
        observability, an **enabled** controller deliberately changes
        planning: it watches per-rail prediction error, re-samples
        drifting rails online, and degrades the split strategy along the
        FULL → PARTIAL → SINGLE fallback ladder while confidence is low.

        ``knobs`` are forwarded to
        :class:`repro.core.calibration.CalibrationController` (``blend``,
        ``auto_resample``, ``clamp_frac``, ``resample_repetitions``,
        detector knobs such as ``drift_threshold``/``cooldown``, and
        ``ladder_knobs``).
        """
        self._calibration = dict(knobs) if enabled else None
        return self

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self) -> Cluster:
        from repro.networks.switch import FatTreeSwitch, Switch

        if not self._machines:
            raise ConfigurationError("cluster has no nodes")
        if not self._rails and not self._switches:
            raise ConfigurationError("cluster has no rails")
        rail_count: Dict[str, int] = {name: 0 for name in self._machines}
        for node_a, node_b, driver in self._rails:
            idx_a, idx_b = rail_count[node_a], rail_count[node_b]
            nic_a = Nic(
                self._machines[node_a], driver, name=f"{driver.technology}{idx_a}"
            )
            nic_b = Nic(
                self._machines[node_b], driver, name=f"{driver.technology}{idx_b}"
            )
            Wire(nic_a, nic_b)
            rail_count[node_a] += 1
            rail_count[node_b] += 1
        for s_idx, (nodes, driver, latency, stages) in enumerate(self._switches):
            if stages:
                switch: Switch = FatTreeSwitch(
                    name=f"fattree{s_idx}",
                    switch_latency=latency,
                    pod_size=stages["pod_size"],
                    spines=stages["spines"],
                    adaptive=stages.get("adaptive", True),
                )
            else:
                switch = Switch(name=f"switch{s_idx}", switch_latency=latency)
            for node in nodes:
                idx = rail_count[node]
                switch.attach(
                    Nic(
                        self._machines[node],
                        driver,
                        name=f"{driver.technology}{idx}",
                    )
                )
                rail_count[node] += 1

        profiles = self._profiles
        if profiles is None and self._sample:
            drivers = [d for _, _, d in self._rails]
            drivers += [d for _, d, _, _ in self._switches]
            profiles = ProfileStore.sample_drivers(drivers, sampler=self._sampler)

        obs = (
            Observability(**self._observability)
            if self._observability is not None
            else NULL_OBS
        )
        inv = (
            InvariantMonitor(**self._invariants)
            if self._invariants is not None
            else None
        )
        engines: Dict[str, NmadEngine] = {}
        for name, machine in self._machines.items():
            spec = self._per_node_strategy.get(name, self._strategy)
            engines[name] = NmadEngine(
                machine,
                strategy=_resolve_strategy(spec),
                estimators=profiles.estimators if profiles else None,
                app_core_id=self._app_core_id,
                multicore_rx=self._multicore_rx,
                obs=obs,
                invariants=inv,
                **self._resilience,
            )
        cluster = Cluster(self.sim, self._machines, engines, profiles)
        cluster.obs = obs
        cluster.invariants = inv
        cluster.fabric = self._fabric
        cluster.collectives = dict(self._collectives)
        if self._calibration is not None:
            from repro.core.calibration import (
                CalibrationController,
                install_calibration,
            )

            install_calibration(
                cluster, CalibrationController(**self._calibration)
            )
        if self._faults is not None:
            # install_faults reads cluster.invariants, set just above, so
            # the injector's on_fault hook sees the same monitor.
            install_faults(cluster, self._faults)
        return cluster

    # ------------------------------------------------------------------ #
    # canned testbeds
    # ------------------------------------------------------------------ #

    @classmethod
    def paper_testbed(
        cls,
        strategy: StrategySpec = "hetero_split",
        rails: Tuple[str, ...] = ("myri10g", "quadrics"),
        sample: bool = True,
    ) -> "ClusterBuilder":
        """The §IV platform: two dual dual-core nodes, Myri-10G + Quadrics.

        ``rails`` can be widened (e.g. ``("myri10g", "quadrics",
        "infiniband")``) for the n-rail ablations.
        """
        builder = cls(strategy=strategy)
        builder.add_node("node0", topology=CpuTopology.paper_testbed())
        builder.add_node("node1", topology=CpuTopology.paper_testbed())
        for rail in rails:
            builder.add_rail(rail, "node0", "node1")
        builder.sampling(enabled=sample)
        return builder
